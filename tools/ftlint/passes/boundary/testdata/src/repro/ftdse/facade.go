// Package ftdse is the facade fixture: its non-test sources are the
// sanctioned bridge to internal packages, its Solver is on the no-copy
// deny list, and its signatures follow the context discipline.
package ftdse

import (
	"context"
	"sync"

	"repro/ftdse/internal/guts"
)

// Answer bridges to the internal package: the facade's own non-test
// sources may do this.
func Answer() int { return guts.Answer() }

// Solver matches the NoCopyTypes deny-list entry repro/ftdse.Solver.
type Solver struct{ state int }

func (s Solver) ByValue() int { // want `method ByValue copies its no-copy receiver`
	return s.state
}

func (s *Solver) ByPointer() int { return s.state }

// CopySolver copies a deny-listed value without touching any sync
// primitive: only the deny list catches it.
func CopySolver(s *Solver) Solver {
	return *s // want `return value copies no-copy value of type repro/ftdse\.Solver`
}

func LockCopy(mu *sync.Mutex) {
	m := *mu // want `assignment copies no-copy value of type sync\.Mutex`
	m.Lock()
}

func FreshLock() *sync.Mutex {
	return new(sync.Mutex) // naming the type is not copying a value
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func RangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies no-copy values of type repro/ftdse\.guarded`
		total += g.n
	}
	return total
}

func RangeIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func CtxLast(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return ctx.Err()
}

func CtxFirst(ctx context.Context, name string) error {
	return ctx.Err()
}

type job struct {
	ctx context.Context // want `struct field stores a context\.Context`
}

type allowedJob struct {
	ctx context.Context //ftlint:allow boundary fixture: the job owns its solve's lifecycle
}

// use keeps the fixture types referenced.
func use(j job, a allowedJob) (context.Context, context.Context) { return j.ctx, a.ctx }
