// Command cmdbad reaches past the facade: flagged.
package main

import "repro/ftdse/internal/guts" // want `crosses the facade boundary: only the ftdse facade may import`

func main() { _ = guts.Answer() }
