// Package boundary enforces the facade contract of the repository in
// three parts:
//
//  1. Import boundary: repro/ftdse/internal/... may be imported only by
//     packages that are themselves under internal/ and by the non-test
//     sources of the facade package (the module root). Commands,
//     examples, the bench harness, the service, the client, and all
//     test files of the facade consume the public API only.
//
//  2. Context discipline: a function that takes a context.Context
//     takes it as its first parameter, and no struct stores a
//     context.Context in a field. Long-running public APIs are
//     cancelable by construction; contexts flow down call chains, they
//     are not parked in state.
//
//  3. No-copy values: values whose type transitively contains a sync
//     or sync/atomic primitive, a conventional noCopy field, or a type
//     on the explicit deny list (the facade Solver) must not be copied:
//     not by value receivers, not by assignment from an existing value,
//     not by being passed, returned, or ranged over by value. Fresh
//     values (composite literals, constructor results) are fine.
package boundary

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "boundary",
	Doc: `enforce the facade boundary, context discipline, and no-copy contracts

Replaces (and generalizes) the ad-hoc AST walk that lived in
boundary_test.go: internal packages stay internal, contexts come first
and are never stored, and lock-bearing values (including the facade
Solver) are never copied.`,
	Run: run,
}

// NoCopyTypes lists named types ("pkgpath.Name") that must never be
// copied even if they carry no sync primitive: their identity is part
// of the API contract. The facade Solver is the canonical entry.
var NoCopyTypes = map[string]bool{
	"repro/ftdse.Solver": true,
}

func run(pass *analysis.Pass) (any, error) {
	checkImports(pass)
	c := &checker{pass: pass, lockMemo: make(map[types.Type]int)}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	return nil, nil
}

// checkImports is part 1: the import boundary.
func checkImports(pass *analysis.Pass) {
	modPath := ""
	if pass.Module != nil {
		modPath = pass.Module.Path
	}
	if modPath == "" {
		return
	}
	pkgPath := pass.Pkg.Path()
	// Test variants are reported as "path [path.test]" by the build
	// system and as "path_test" for external test packages; normalize
	// to the package's source directory identity.
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkgPath = strings.TrimSuffix(pkgPath, "_test")

	internalPrefix := modPath + "/internal/"
	if strings.HasPrefix(pkgPath, internalPrefix) || pkgPath == modPath+"/internal" {
		return // internal packages import each other freely
	}
	isFacade := pkgPath == modPath

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !strings.HasPrefix(path, internalPrefix) {
				continue
			}
			if isFacade && !pass.IsTestFile(imp.Pos()) {
				continue // the facade's own sources are the sanctioned bridge
			}
			what := "only the ftdse facade may import internal packages"
			if isFacade {
				what = "facade tests must exercise the public API, not internal packages"
			}
			pass.Reportf(imp.Pos(), "import %q crosses the facade boundary: %s", path, what)
		}
	}
}

type checker struct {
	pass     *analysis.Pass
	lockMemo map[types.Type]int // 0 unknown/in-progress, 1 no, 2 yes
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		c.checkCtxParams(n.Type)
		if n.Recv != nil && len(n.Recv.List) == 1 {
			if t := c.typeOf(n.Recv.List[0].Type); t != nil {
				if _, isPtr := t.(*types.Pointer); !isPtr && c.lockBearing(t) {
					c.pass.Reportf(n.Recv.Pos(), "method %s copies its no-copy receiver %s: use a pointer receiver", n.Name.Name, types.TypeString(t, nil))
				}
			}
		}
	case *ast.FuncLit:
		c.checkCtxParams(n.Type)
	case *ast.StructType:
		for _, field := range n.Fields.List {
			if t := c.typeOf(field.Type); t != nil && isContext(t) {
				c.pass.Reportf(field.Pos(), "struct field stores a context.Context: pass contexts down call chains as the first parameter instead of parking them in state")
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			c.checkCopy(rhs, "assignment")
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			c.checkCopy(v, "assignment")
		}
	case *ast.CallExpr:
		if c.pass.TypesInfo.Types[n.Fun].IsType() {
			break // conversion, handled as its operand's use elsewhere
		}
		for _, arg := range n.Args {
			c.checkCopy(arg, "call argument")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopy(r, "return value")
		}
	case *ast.RangeStmt:
		if n.Value != nil {
			if t := c.typeOf(n.Value); t != nil && c.lockBearing(t) {
				c.pass.Reportf(n.Value.Pos(), "range copies no-copy values of type %s: range over indices or pointers instead", types.TypeString(t, nil))
			}
		}
	}
	return true
}

// checkCtxParams enforces context.Context-first on any signature that
// takes a context at all.
func (c *checker) checkCtxParams(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := c.typeOf(field.Type); t != nil && isContext(t) && pos > 0 {
			c.pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// checkCopy flags expr when it reads an existing no-copy value by
// value. Fresh values — composite literals, calls (constructors),
// conversions — are not copies of anything observable.
func (c *checker) checkCopy(expr ast.Expr, how string) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if c.pass.TypesInfo.Types[expr].IsType() {
		return // a type argument (new(T), make(T, ...)) names T, it does not copy one
	}
	t := c.typeOf(expr)
	if t == nil || !c.lockBearing(t) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s copies no-copy value of type %s", how, types.TypeString(t, nil))
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.TypeOf(e)
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// lockBearing reports whether copying a value of type t duplicates
// synchronization state or an identity-bearing API value.
func (c *checker) lockBearing(t types.Type) bool {
	switch c.lockMemo[t] {
	case 1:
		return false
	case 2:
		return true
	}
	c.lockMemo[t] = 1 // break recursion; cycles go through pointers anyway
	result := c.lockBearing1(t)
	if result {
		c.lockMemo[t] = 2
	}
	return result
}

func (c *checker) lockBearing1(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			path := pkg.Path()
			if path == "sync" || path == "sync/atomic" {
				_, isStruct := named.Underlying().(*types.Struct)
				return isStruct && obj.Name() != "Locker"
			}
			if NoCopyTypes[path+"."+obj.Name()] {
				return true
			}
		}
		return c.lockBearing(named.Underlying())
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if f.Name() == "noCopy" {
				return true
			}
			if c.lockBearing(f.Type()) {
				return true
			}
		}
	case *types.Array:
		return c.lockBearing(t.Elem())
	}
	return false
}
