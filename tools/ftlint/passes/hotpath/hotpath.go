// Package hotpath statically guards the allocation-free hot path that
// PR 5's benchmarks established dynamically (−92% allocs/op on the
// move evaluator). Functions annotated with a //ftdse:hotpath doc
// directive must not contain allocation sites in their own bodies.
//
// The pass flags, inside annotated functions (non-test files only):
//
//   - make, new, and address-taken or reference-kind composite
//     literals (&T{...}, []T{...}, map[K]V{...})
//   - append (growth cannot be excluded statically)
//   - function literals (closure allocation + captures)
//   - go statements (new goroutine ⇒ new stack)
//   - string concatenation and string<->[]byte/[]rune conversions
//     (except conversions the compiler elides, e.g. m[string(b)])
//   - calls to well-known allocating helpers (fmt.Sprintf & friends,
//     strings.Join/Repeat, strconv.Itoa/Format*/Quote, *.Clone)
//   - implicit boxing: a non-constant concrete value meeting an
//     interface type at a call argument, assignment, or return
//
// Escapes are deliberate and visible: error exits are exempt (any
// allocation inside a return statement that also returns a non-nil
// error — failure paths abort the hot loop), and every remaining
// intentional site (arena warm-up, amortized capacity growth) carries
// an //ftlint:allow hotpath <reason> directive. The annotation guards
// a function's own body only; annotate callees to extend coverage down
// the call chain.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: `flag allocation sites inside //ftdse:hotpath-annotated functions

The scheduler's steady-state build path (sched.BuildInto and the
builder methods under it), the move evaluator's per-candidate path, the
policy expansion arena, and the TTP bus recycler are annotated; this
pass fails any new allocation introduced into them. Intentional
cold-start allocations carry //ftlint:allow hotpath directives with
reasons.`,
	Run: run,
}

// allocatingCalls are package-level stdlib helpers that allocate their
// result by contract (their Append*/WriteTo shaped siblings do not).
var allocatingCalls = map[string]bool{
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true, "fmt.Errorf": true,
	"strings.Join": true, "strings.Repeat": true, "strings.ToUpper": true, "strings.ToLower": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"bytes.Clone": true, "slices.Clone": true, "maps.Clone": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.IsHotpath(fn) {
				continue
			}
			if pass.IsTestFile(fn.Pos()) {
				continue
			}
			w := &walker{pass: pass, info: pass.TypesInfo}
			if sig, ok := pass.TypesInfo.TypeOf(fn.Name).(*types.Signature); ok {
				w.sigs = append(w.sigs, sig)
			}
			w.node(fn.Body, nil)
		}
	}
	return nil, nil
}

// walker traverses one hot function. Traversal is manual so that each
// node knows its parent (for elided-conversion contexts) and the
// signature stack (for return boxing through nested literals).
type walker struct {
	pass *analysis.Pass
	info *types.Info
	sigs []*types.Signature // enclosing function signatures, innermost last
}

func (w *walker) node(n ast.Node, parent ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ReturnStmt:
		if w.isErrorReturn(n) {
			return // failure exit: allocations here do not run in steady state
		}
		w.checkReturnBoxing(n)

	case *ast.GoStmt:
		w.pass.Reportf(n.Pos(), "go statement in hot path: goroutine start allocates; hoist the worker spawn out of the annotated function")

	case *ast.FuncLit:
		w.pass.Reportf(n.Pos(), "function literal in hot path: closures allocate; hoist the literal or use a named method")
		if sig, ok := w.info.TypeOf(n).(*types.Signature); ok {
			w.sigs = append(w.sigs, sig)
			defer func() { w.sigs = w.sigs[:len(w.sigs)-1] }()
		}

	case *ast.CompositeLit:
		w.checkComposite(n, parent)

	case *ast.BinaryExpr:
		if n.Op == token.ADD && w.info.Types[n].Value == nil {
			if t := w.info.TypeOf(n); t != nil && isString(t) {
				w.pass.Reportf(n.Pos(), "string concatenation in hot path allocates; append into a reused byte buffer instead")
			}
		}

	case *ast.CallExpr:
		w.checkCall(n, parent)

	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if len(n.Lhs) == len(n.Rhs) {
				w.checkBoxing(rhs, w.info.TypeOf(n.Lhs[i]), "assignment")
			}
		}

	case *ast.ValueSpec:
		if n.Type != nil {
			want := w.info.TypeOf(n.Type)
			for _, v := range n.Values {
				w.checkBoxing(v, want, "assignment")
			}
		}
	}

	for _, child := range children(n) {
		w.node(child, n)
	}
}

// isErrorReturn reports whether ret returns a non-nil error value —
// the statically recognizable failure exit.
func (w *walker) isErrorReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		t := w.info.TypeOf(r)
		if t != nil && types.AssignableTo(t, errType) {
			return true
		}
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

func (w *walker) checkReturnBoxing(ret *ast.ReturnStmt) {
	if len(w.sigs) == 0 {
		return
	}
	results := w.sigs[len(w.sigs)-1].Results()
	if results.Len() != len(ret.Results) {
		return // naked return or single call expansion
	}
	for i, r := range ret.Results {
		w.checkBoxing(r, results.At(i).Type(), "return")
	}
}

func (w *walker) checkComposite(lit *ast.CompositeLit, parent ast.Node) {
	t := w.info.TypeOf(lit)
	if t == nil {
		return
	}
	if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
		w.pass.Reportf(u.Pos(), "&%s composite literal in hot path allocates; reuse an arena slot", typeLabel(t))
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if _, inKV := parent.(*ast.CompositeLit); inKV && w.info.Types[lit].IsValue() && lit.Type == nil {
			// elided inner literal of an outer (already flagged) literal
			return
		}
		w.pass.Reportf(lit.Pos(), "%s literal in hot path allocates; reuse a scratch buffer", typeLabel(t))
	}
}

func (w *walker) checkCall(call *ast.CallExpr, parent ast.Node) {
	// Conversions.
	if w.info.Types[call.Fun].IsType() {
		w.checkConversion(call, parent)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make in hot path allocates; take the buffer from the scratch arena")
			case "new":
				w.pass.Reportf(call.Pos(), "new in hot path allocates; reuse an arena slot")
			case "append":
				w.pass.Reportf(call.Pos(), "append in hot path may grow its backing array; reserve capacity in the scratch and justify with //ftlint:allow hotpath if growth is amortized")
			}
			return
		}
	}
	// Known allocating helpers.
	if fn := typeutilCallee(w.info, call); fn != nil && fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			if allocatingCalls[fn.Pkg().Path()+"."+fn.Name()] {
				w.pass.Reportf(call.Pos(), "%s.%s in hot path allocates its result; format into a reused buffer instead", fn.Pkg().Name(), fn.Name())
			}
		}
	}
	// Boxing at call arguments.
	sig, ok := w.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var want types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			want = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			want = params.At(i).Type()
		}
		w.checkBoxing(arg, want, "call argument")
	}
}

func (w *walker) checkConversion(call *ast.CallExpr, parent ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	to, from := w.info.TypeOf(call), w.info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isString(to) && (isByteSlice(from) || isRuneSlice(from)):
		// m[string(b)] and comparisons are elided by the compiler.
		if idx, ok := parent.(*ast.IndexExpr); ok {
			if t := w.info.TypeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return
				}
			}
		}
		w.pass.Reportf(call.Pos(), "%s conversion in hot path copies the bytes; keep one representation", typeLabel(to))
	case (isByteSlice(to) || isRuneSlice(to)) && isString(from):
		w.pass.Reportf(call.Pos(), "%s conversion in hot path copies the string; keep one representation", typeLabel(to))
	}
}

// checkBoxing flags expr when a non-constant concrete value meets an
// interface type: the conversion heap-allocates in the general case.
func (w *walker) checkBoxing(expr ast.Expr, want types.Type, where string) {
	if want == nil || !types.IsInterface(want) {
		return
	}
	if _, isTypeParam := want.(*types.TypeParam); isTypeParam {
		return
	}
	tv, ok := w.info.Types[expr]
	if !ok || tv.Value != nil { // constants convert to static descriptors
		return
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) {
		return
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: the interface data word holds the value directly
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	w.pass.Reportf(expr.Pos(), "%s boxes %s into %s: interface conversion allocates; keep the hot path monomorphic", where, typeLabel(t), typeLabel(want))
}

// typeutilCallee resolves the static *types.Func of a call, if any.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool { return isSliceOf(t, types.Byte) }
func isRuneSlice(t types.Type) bool { return isSliceOf(t, types.Rune) }

func isSliceOf(t types.Type, kind types.BasicKind) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// children returns the direct child nodes of n, in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
