package hotpath_test

import (
	"testing"

	"repro/ftdse/tools/ftlint/ftltest"
	"repro/ftdse/tools/ftlint/passes/hotpath"
)

func TestHotpath(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "hot", hotpath.Analyzer)
}

// TestDetection fails if the fixture stops depending on the analyzer:
// without the pass, its expectations must go unmatched.
func TestDetection(t *testing.T) {
	mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) == 0 {
		t.Fatal("fixture passes without the hotpath analyzer; it no longer tests detection")
	}
}
