// Package hot is the hotpath fixture: allocation sites inside
// //ftdse:hotpath-annotated functions are flagged; unannotated twins,
// error exits, elided conversions, pointer-shaped boxing and
// //ftlint:allow'd lines are not.
package hot

import "fmt"

type S struct{ x int }

//ftdse:hotpath
func Make(n int) []int {
	buf := make([]int, n) // want `make in hot path allocates`
	return buf
}

// MakeCold is the unannotated twin: same body, no findings.
func MakeCold(n int) []int {
	return make([]int, n)
}

//ftdse:hotpath
func Grow(dst []int, v int) []int {
	dst = append(dst, v) // want `append in hot path may grow its backing array`
	return dst
}

//ftdse:hotpath
func GrowAllowed(dst []int, v int) []int {
	dst = append(dst, v) //ftlint:allow hotpath fixture: capacity reserved by the caller
	return dst
}

//ftdse:hotpath
func GrowUnjustified(dst []int, v int) []int {
	dst = append(dst, v) /* want `append in hot path` `requires a reason` */ //ftlint:allow hotpath
	return dst
}

//ftdse:hotpath
func New() *S {
	return new(S) // want `new in hot path allocates`
}

//ftdse:hotpath
func Fresh() *S {
	return &S{} // want `&hot\.S composite literal in hot path allocates`
}

//ftdse:hotpath
func Literal() []int {
	return []int{1, 2, 3} // want `\[\]int literal in hot path allocates`
}

//ftdse:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf in hot path allocates its result` `call argument boxes int into any`
}

//ftdse:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation in hot path allocates`
}

//ftdse:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want `\[\]byte conversion in hot path copies the string`
}

//ftdse:hotpath
func MapKey(m map[string]int, b []byte) int {
	return m[string(b)] // elided by the compiler: fine
}

//ftdse:hotpath
func Box(v int) any {
	return v // want `return boxes int into any`
}

//ftdse:hotpath
func BoxArg(v int) {
	sink(v) // want `call argument boxes int into any`
}

func sink(any) {}

//ftdse:hotpath
func PointerBox(p *S) any {
	return p // pointer-shaped: the interface word holds it directly
}

//ftdse:hotpath
func Spawn(done chan struct{}) {
	go waiter(done) // want `go statement in hot path`
}

func waiter(done chan struct{}) { <-done }

//ftdse:hotpath
func Closure(n int) func() int {
	return func() int { return n } // want `function literal in hot path`
}

//ftdse:hotpath
func ErrorExit(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative %d", n) // failure exit: exempt
	}
	return n, nil
}
