// Package wirecompat enforces the wire-evolution policy at vet time:
// every //ftdse:wire-annotated struct and const group in the analyzed
// package is re-derived from type information and diffed against the
// checked-in wire.lock (found by walking up from the package
// directory). Non-additive drift — a removed, renamed, retyped or
// reordered field; a disturbed enum registry — is a finding on the
// declaration. Additive growth is accepted here and caught as
// staleness by `ftlint -wirelock -check` in CI.
//
// Deleting an annotated declaration outright leaves nothing for this
// pass to anchor a diagnostic to; the -wirelock -check run covers that
// case with its whole-module view.
package wirecompat

import (
	"os"
	"path/filepath"
	"sort"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/wirelock"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecompat",
	Doc:  "wire and persistence formats may only grow\n\nDiffs //ftdse:wire-annotated structs and const registries against wire.lock and reports non-additive changes: field removal, json renames, type changes, reordering, enum registry disturbance.",
	Run:  run,
}

// LockName is the lock file's name, shared with the generator.
const LockName = wirelock.LockName

func run(pass *analysis.Pass) (any, error) {
	cur := wirelock.NewLock()
	entries := wirelock.Collect(pass.Files, pass.TypesInfo, pass.Pkg, cur)
	if len(entries) == 0 {
		return nil, nil
	}
	locked, ok := findLock(pass)
	if !ok {
		return nil, nil // no lock checked in: nothing to hold the line against
	}

	// Diff each collected entry that the lock knows. Entries are keyed
	// uniquely, but recursion can reach one struct from two roots; diff
	// each key once, anchored at its first (source-order) entry.
	seen := make(map[string]bool)
	for _, e := range entries {
		if seen[e.Key] {
			continue
		}
		seen[e.Key] = true
		var diffs []string
		if ls, ok := locked.Structs[e.Key]; ok {
			diffs = wirelock.DiffStruct(ls, cur.Structs[e.Key])
		} else if lv, ok := locked.Enums[e.Key]; ok {
			diffs = wirelock.DiffEnum(lv, cur.Enums[e.Key])
		}
		sort.Strings(diffs)
		for _, d := range diffs {
			pass.Reportf(e.Pos, "breaking wire change in %s: %s (see wire.lock; the format may only grow)", e.Key, d)
		}
	}
	return nil, nil
}

// findLock walks up from the package directory to the nearest
// wire.lock. A malformed lock reports once and then stands aside.
func findLock(pass *analysis.Pass) (*wirelock.Lock, bool) {
	if len(pass.Files) == 0 {
		return nil, false
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for i := 0; i < 16; i++ {
		data, err := os.ReadFile(filepath.Join(dir, LockName))
		if err == nil {
			lock, err := wirelock.Decode(data)
			if err != nil {
				pass.Reportf(pass.Files[0].Package, "unreadable %s in %s: %v", LockName, dir, err)
				return nil, false
			}
			return lock, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return nil, false
}
