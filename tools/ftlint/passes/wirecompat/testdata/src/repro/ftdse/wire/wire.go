// Package wire is the wirecompat fixture: its wire.lock was "generated"
// from an older revision, and each declaration either grew additively
// (fine) or broke the format (finding).
package wire

// Good grew a field since the lock was written: additive, accepted.
//
//ftdse:wire
type Good struct {
	ID       string `json:"id"`
	Attempts int    `json:"attempts,omitempty"`
	Note     string `json:"note"`
}

// Renamed changed a json tag the lock pinned down.
//
//ftdse:wire
type Renamed struct { // want `breaking wire change in repro/ftdse/wire.Renamed: field 0 renamed or reordered on the wire: json "id" became "ident"`
	ID string `json:"ident"`
}

// Retyped changed a field's type in place.
//
//ftdse:wire
type Retyped struct { // want `breaking wire change in repro/ftdse/wire.Retyped: field Count changed type: int became string`
	Count string `json:"count"`
}

// Shrunk dropped a field the lock still records.
//
//ftdse:wire
type Shrunk struct { // want `breaking wire change in repro/ftdse/wire.Shrunk: field B \(json "b"\) removed`
	A string `json:"a"`
}

// Nested is clean itself, but recursion reaches Inner, whose locked
// field type changed; the finding anchors here, at the annotated root.
//
//ftdse:wire
type Nested struct { // want `breaking wire change in repro/ftdse/wire.Inner: field X changed type: string became int`
	Inner Inner `json:"inner"`
}

// Inner is unannotated: it enters the schema through Nested.
type Inner struct {
	X int `json:"x"`
}

// hidden is unexported and unannotated; nothing reaches it.
type hidden struct {
	Secret []byte `json:"secret"`
}

// The record registry reordered a value the lock pinned.
//
//ftdse:wire records
const ( // want `breaking wire change in repro/ftdse/wire#records: value 1 changed or reordered: "c" became "b"`
	recA = "a"
	recB = "b"
)

// The kind registry only appended: additive, accepted.
//
//ftdse:wire kinds
const (
	kindX = "x"
	kindY = "y"
)
