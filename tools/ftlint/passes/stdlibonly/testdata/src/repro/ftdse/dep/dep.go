// Package dep is the stdlibonly fixture: stdlib and module-own imports
// pass, external modules and cgo are flagged.
package dep

import (
	"sort"

	"example.com/extdep" // want `the module is stdlib-only`

	"repro/ftdse/internal/guts"
)

// Use references every import.
func Use(xs []int) int {
	sort.Ints(xs)
	extdep.Use()
	return guts.Answer()
}
