// Package guts stands in for a module-internal package.
package guts

// Answer is the only export.
func Answer() int { return 42 }
