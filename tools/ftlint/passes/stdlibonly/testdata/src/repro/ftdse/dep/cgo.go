package dep

import "C" // want `the module is pure Go; cgo is not available`
