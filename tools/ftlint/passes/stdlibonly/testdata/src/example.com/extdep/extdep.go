// Package extdep stands in for a third-party module.
package extdep

// Use does nothing.
func Use() {}
