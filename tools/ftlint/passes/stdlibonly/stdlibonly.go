// Package stdlibonly enforces the zero-dependency invariant of the
// main module: every import of every file (tests included — the module
// has no test dependencies either) is either a standard-library
// package or a package of the module itself.
//
// External packages are recognized by the module-path convention the
// toolchain itself relies on: an import path whose first segment
// contains a dot is a module outside the standard library. Cgo
// ("import C") is also flagged — the module is pure Go.
package stdlibonly

import (
	"strconv"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "stdlibonly",
	Doc: `enforce that the module imports only the standard library and itself

The main module's go.mod carries zero require directives, which keeps
the reproduction hermetic: it builds offline, forever, with nothing but
a Go toolchain. This pass fails any import whose first path segment
contains a dot (the conventional marker of a non-stdlib module) unless
the path belongs to the analyzed module, and fails "C" (cgo).`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	modPath := ""
	if pass.Module != nil {
		modPath = pass.Module.Path
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "C" {
				pass.Reportf(imp.Pos(), "import %q: the module is pure Go; cgo is not available", path)
				continue
			}
			if modPath != "" && (path == modPath || strings.HasPrefix(path, modPath+"/")) {
				continue
			}
			first := path
			if i := strings.IndexByte(first, '/'); i >= 0 {
				first = first[:i]
			}
			if strings.Contains(first, ".") {
				pass.Reportf(imp.Pos(), "import %q: the module is stdlib-only (go.mod has zero requirements); vendoring-by-dependency is not an option here", path)
			}
		}
	}
	return nil, nil
}
