// Package det is the determinism fixture: every flagged line carries a
// want expectation; the unflagged functions pin the sanctioned
// patterns (collect-then-sort, keyed writes, commutative accumulation,
// extremum, latch, per-element calls, seeded randomness).
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// --- wall clock and global randomness ---

func Clock() time.Duration {
	start := time.Now()      // want `time\.Now in the deterministic core`
	return time.Since(start) // want `time\.Since in the deterministic core`
}

func AllowedClock() time.Time {
	return time.Now() //ftlint:allow determinism fixture: sanctioned wrapper
}

// AnnotatedClock is a sanctioned wrapper: the doc annotation exempts
// every clock read in its body.
//
//ftdse:clock fixture: event stamps are reporting only
func AnnotatedClock(start time.Time) time.Duration {
	if start.IsZero() {
		start = time.Now()
	}
	return time.Since(start)
}

// notAnnotated has no //ftdse:clock line, so its clock reads are still
// flagged — the annotation must not leak past the annotated body.
func notAnnotated() time.Time {
	return time.Now() // want `time\.Now in the deterministic core`
}

func GlobalRand() int {
	return rand.Intn(10) // want `global rand\.Intn uses the shared process source`
}

func SeededRand(r *rand.Rand) int {
	return r.Intn(10) // seeded source, method call: fine
}

// --- map iteration order reaching results ---

func LastWins(m map[string]int) int {
	var last int
	for _, v := range m {
		last = v // want `assignment to last inside range over map`
	}
	return last
}

func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside range over map`
	}
	return keys
}

func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation`
	}
	return sum
}

func Concat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want `string concatenation`
	}
	return s
}

func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // commutative: fine
	}
	return sum
}

func Keyed(m, out map[string]int) {
	for k, v := range m {
		out[k] = 2 * v // keyed map write: fine
	}
}

func FirstMatch(m map[string]int) string {
	for k, v := range m {
		if v > 10 {
			return k // want `return of an iteration-dependent value`
		}
	}
	return ""
}

func WhichFirst(m map[string]int) string {
	for _, v := range m {
		if v == 1 {
			return "one"
		}
		if v == 2 {
			return "two" // want `multiple conditional returns`
		}
	}
	return ""
}

func Exists(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true // one conditional return: an existence check
		}
	}
	return false
}

func Extremum(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v // max over the values: commutative
		}
	}
	return best
}

func Latch(m map[string]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true // single-site constant latch: order-free
		}
	}
	return found
}

func Publish(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `call publishes iteration-dependent values`
	}
}

func PerElement(m map[string]*Closer) {
	for _, v := range m {
		v.Close() // per-element call on the iterated value: fine
	}
}

type Closer struct{ open bool }

func (c *Closer) Close() { c.open = false }

func Send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send inside range over map`
	}
}

func Nested(m map[string][]int) int {
	var last int
	for _, vs := range m {
		for _, v := range vs {
			last = v // want `assignment to last inside range over map`
		}
	}
	return last
}

func Allowed(m map[string]int) int {
	var last int
	for _, v := range m {
		last = v //ftlint:allow determinism fixture: order independence proven elsewhere
	}
	return last
}
