package det

import "time"

// Test files are exempt from the determinism pass: wall-clock reads in
// tests (timeouts, benchmarks) are fine.
func testOnlyClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}
