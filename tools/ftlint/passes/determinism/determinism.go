// Package determinism enforces the repository's bit-reproducibility
// contract: identical inputs produce identical results — across runs,
// across worker counts, across machines. Two families of violations
// are flagged in non-test files:
//
// Map-iteration order reaching a result. Inside a `for ... range m`
// over a map, the pass taints the iteration variables (and locals
// derived from them) and flags order-sensitive uses:
//
//   - append of tainted values to a variable declared outside the loop
//     — unless the slice is passed to sort.*/slices.Sort* later in the
//     same block (the sanctioned collect-then-sort pattern)
//   - assignment to an outer variable from a tainted expression, or
//     under a tainted condition (last-iteration-wins)
//   - compound assignment to an outer float/string accumulator
//     (rounding and concatenation are order-sensitive; integer and
//     bitwise accumulation is commutative and allowed)
//   - sends of tainted values on channels
//   - returns of tainted values, and multiple conditional returns
//     (first-match-wins depends on iteration order)
//   - statement-position calls passing tainted values to outer sinks
//     (hash.Write, fmt.Fprintf, collector methods); calls on tainted
//     receivers (per-element operations) and keyed map writes are
//     order-independent and allowed
//
// Wall-clock and global randomness in the deterministic core. In
// packages under internal/, time.Now/Since/Until are flagged (search
// decisions must not observe wall time). A function whose doc comment
// carries a //ftdse:clock annotation is a sanctioned clock wrapper:
// every clock read inside its body is exempt, so observability call
// sites (flight-recorder event stamps, Elapsed fields) route through
// one audited wrapper instead of sprinkling //ftlint:allow directives
// over hot paths. Line-level //ftlint:allow determinism still works for
// one-off cases. Package-level math/rand functions (the process-global
// source) are flagged module-wide: randomized engines thread an
// explicitly seeded *rand.Rand.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `flag map-iteration order, wall clock, and global randomness reaching results

The solver's contract is bit-identical results for any worker count;
the service cache is keyed by a canonical fingerprint. Both die quietly
when map iteration order, time.Now, or the global math/rand source
leaks into an output. Sanctioned patterns (collect-then-sort, keyed map
writes, commutative accumulation, per-element operations) are not
flagged; sanctioned wall-clock wrappers carry a //ftdse:clock func
annotation (or, for one-off lines, //ftlint:allow).`,
	Run: run,
}

// globalRandFuncs are the package-level math/rand(/v2) functions backed
// by the shared process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) (any, error) {
	inInternal := false
	for _, seg := range strings.Split(pass.Pkg.Path(), "/") {
		if seg == "internal" {
			inInternal = true
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		parents := buildParents(f)
		clocks := clockFuncRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						newLoopChecker(pass, n, parents).check()
					}
				}
			case *ast.CallExpr:
				checkClockAndRand(pass, n, inInternal && !clocks.contains(n.Pos()))
			}
			return true
		})
	}
	return nil, nil
}

// posRanges is a set of source spans (sanctioned clock-wrapper bodies).
type posRanges [][2]token.Pos

func (r posRanges) contains(p token.Pos) bool {
	for _, span := range r {
		if p >= span[0] && p <= span[1] {
			return true
		}
	}
	return false
}

// clockFuncRanges collects the body spans of functions annotated with
// //ftdse:clock in their doc comment — the sanctioned clock wrappers.
// The annotation line is "//ftdse:clock" optionally followed by a
// reason; it exempts clock reads inside the function body only, so the
// wrapper stays the single audited place wall time enters the core.
func clockFuncRanges(f *ast.File) posRanges {
	var out posRanges
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		for _, cm := range fd.Doc.List {
			text := strings.TrimPrefix(cm.Text, "//")
			if text == "ftdse:clock" || strings.HasPrefix(text, "ftdse:clock ") {
				out = append(out, [2]token.Pos{fd.Body.Lbrace, fd.Body.Rbrace})
				break
			}
		}
	}
	return out
}

// checkClockAndRand flags wall-clock reads in internal packages and
// global math/rand use everywhere.
func checkClockAndRand(pass *analysis.Pass, call *ast.CallExpr, inInternal bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. seeded rng.Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if inInternal && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
			pass.Reportf(call.Pos(), "time.%s in the deterministic core: search results must not observe wall time; route timing through a sanctioned wrapper (//ftdse:clock func annotation)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s uses the shared process source: thread an explicitly seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// loopChecker analyzes one range-over-map statement.
type loopChecker struct {
	pass    *analysis.Pass
	loop    *ast.RangeStmt
	parents map[ast.Node]ast.Node
	tainted map[types.Object]bool
	// condReturns collects returns of untainted values under tainted
	// conditions: one is an order-independent existence check, two or
	// more race on which matching element is seen first.
	condReturns []*ast.ReturnStmt
	// assignCount counts assignment statements per target variable, to
	// recognize single-site constant latches (found = true).
	assignCount map[types.Object]int
}

func newLoopChecker(pass *analysis.Pass, loop *ast.RangeStmt, parents map[ast.Node]ast.Node) *loopChecker {
	c := &loopChecker{pass: pass, loop: loop, parents: parents,
		tainted: make(map[types.Object]bool), assignCount: make(map[types.Object]int)}
	for _, v := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				c.tainted[obj] = true
			}
		}
	}
	return c
}

func (c *loopChecker) check() {
	// Propagate taint through locals (two rounds reach chains like
	// a := m[k]; b := f(a) without a full fixpoint).
	for round := 0; round < 2; round++ {
		ast.Inspect(c.loop.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.propagate(n.Lhs, n.Rhs)
			case *ast.ValueSpec:
				ids := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					ids[i] = id
				}
				c.propagate(ids, n.Values)
			case *ast.RangeStmt:
				// A nested range over a tainted collection taints its
				// own iteration variables.
				if n.Tok == token.DEFINE && c.taintedExpr(n.X) {
					c.propagate([]ast.Expr{n.Key, n.Value}, []ast.Expr{n.X})
				}
			}
			return true
		})
	}
	ast.Inspect(c.loop.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			for _, l := range a.Lhs {
				if obj := rootObject(c.pass.TypesInfo, l); obj != nil {
					c.assignCount[obj]++
				}
			}
		}
		return true
	})
	c.walk(c.loop.Body, false)
	if len(c.condReturns) > 1 {
		for _, ret := range c.condReturns[1:] {
			c.pass.Reportf(ret.Pos(), "multiple conditional returns inside range over map: which one fires first depends on iteration order; iterate over sorted keys")
		}
	}
}

func (c *loopChecker) propagate(lhs, rhs []ast.Expr) {
	anyTainted := false
	for _, r := range rhs {
		if c.taintedExpr(r) {
			anyTainted = true
		}
	}
	if !anyTainted {
		return
	}
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.declaredInside(obj) {
				c.tainted[obj] = true
			}
		}
	}
}

// walk visits the loop body; condTaint is true inside branches whose
// condition depends on the iteration.
func (c *loopChecker) walk(n ast.Node, condTaint bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		c.walkStmt(n.Init, condTaint)
		if n.Cond != nil && c.taintedExpr(n.Cond) {
			condTaint = true
		}
		c.walk(n.Body, condTaint)
		c.walk(n.Else, condTaint)
		return
	case *ast.SwitchStmt:
		c.walkStmt(n.Init, condTaint)
		if n.Tag != nil && c.taintedExpr(n.Tag) {
			condTaint = true
		}
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			ct := condTaint
			for _, e := range cc.List {
				if c.taintedExpr(e) {
					ct = true
				}
			}
			for _, s := range cc.Body {
				c.walk(s, ct)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		ct := condTaint || c.taintedNode(n.Assign)
		for _, cl := range n.Body.List {
			for _, s := range cl.(*ast.CaseClause).Body {
				c.walk(s, ct)
			}
		}
		return
	case *ast.AssignStmt:
		c.checkAssign(n, condTaint)
	case *ast.SendStmt:
		if c.taintedExpr(n.Value) || condTaint {
			c.pass.Reportf(n.Pos(), "send inside range over map publishes values in iteration order; collect and sort first")
		}
	case *ast.ReturnStmt:
		c.checkReturn(n, condTaint)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			c.checkSinkCall(call)
		}
	}
	for _, child := range childNodes(n) {
		c.walk(child, condTaint)
	}
}

func (c *loopChecker) walkStmt(s ast.Stmt, condTaint bool) {
	if s != nil {
		c.walk(s, condTaint)
	}
}

func (c *loopChecker) checkAssign(n *ast.AssignStmt, condTaint bool) {
	for i, lhs := range n.Lhs {
		target := rootObject(c.pass.TypesInfo, lhs)
		if target == nil || c.declaredInside(target) || c.isLoopVar(target) {
			continue
		}
		// Keyed map writes are order-independent.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := c.pass.TypesInfo.TypeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		rhsTainted := rhs != nil && c.taintedExpr(rhs)

		// x = append(x, tainted...) — accumulation in iteration order.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
				if b, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
					argsTainted := false
					for _, a := range call.Args[1:] {
						if c.taintedExpr(a) {
							argsTainted = true
						}
					}
					if (argsTainted || condTaint) && !c.sortedAfter(target) {
						c.pass.Reportf(n.Pos(), "append inside range over map accumulates in iteration order; sort %s afterwards (sort.*/slices.Sort*) or iterate over sorted keys", target.Name())
					}
					continue
				}
			}
		}

		switch n.Tok {
		case token.ASSIGN:
			if rhsTainted || condTaint {
				// found = true, a single constant-assignment site: the
				// latched value cannot depend on iteration order.
				if !rhsTainted && rhs != nil && c.pass.TypesInfo.Types[rhs].Value != nil && c.assignCount[target] == 1 {
					continue
				}
				// x = e directly under `if e > x`: the extremum idiom;
				// max/min over a set is commutative.
				if rhs != nil && c.isExtremumAssign(n, lhs, rhs) {
					continue
				}
				c.pass.Reportf(n.Pos(), "assignment to %s inside range over map: the surviving value depends on iteration order; iterate over sorted keys or make the reduction commutative", target.Name())
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			if !rhsTainted && !condTaint {
				continue
			}
			if t := c.pass.TypesInfo.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok {
					info := b.Info()
					if info&types.IsInteger != 0 || info&types.IsBoolean != 0 {
						continue // commutative: order-independent
					}
					kind := "accumulation on this type"
					if info&types.IsFloat != 0 || info&types.IsComplex != 0 {
						kind = "floating-point accumulation (rounding)"
					} else if info&types.IsString != 0 {
						kind = "string concatenation"
					}
					c.pass.Reportf(n.Pos(), "%s inside range over map is order-sensitive; iterate over sorted keys", kind)
				}
			}
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
			if rhsTainted || condTaint {
				c.pass.Reportf(n.Pos(), "non-commutative compound assignment inside range over map is order-sensitive; iterate over sorted keys")
			}
		}
	}
}

// isExtremumAssign reports whether n assigns rhs to lhs in the then
// branch of an if whose condition orders exactly that pair (if m > h
// { h = m }). The surviving value is the maximum (or minimum) of the
// iterated set, which no iteration order can change.
func (c *loopChecker) isExtremumAssign(n *ast.AssignStmt, lhs, rhs ast.Expr) bool {
	blk, ok := c.parents[n].(*ast.BlockStmt)
	if !ok {
		return false
	}
	ifs, ok := c.parents[blk].(*ast.IfStmt)
	if !ok || ifs.Body != blk {
		return false
	}
	cmp, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	x, y := types.ExprString(ast.Unparen(cmp.X)), types.ExprString(ast.Unparen(cmp.Y))
	l, r := types.ExprString(ast.Unparen(lhs)), types.ExprString(ast.Unparen(rhs))
	return (x == l && y == r) || (x == r && y == l)
}

func (c *loopChecker) checkReturn(n *ast.ReturnStmt, condTaint bool) {
	for _, r := range n.Results {
		if c.taintedExpr(r) {
			c.pass.Reportf(n.Pos(), "return of an iteration-dependent value inside range over map: which element is returned depends on iteration order; iterate over sorted keys")
			return
		}
	}
	if condTaint {
		c.condReturns = append(c.condReturns, n)
	}
}

// checkSinkCall flags statement-position calls that push tainted values
// into outer sinks (writers, hashes, collectors). Per-element calls —
// tainted receiver, e.g. v.Close() — and builtin delete/clear are
// order-independent.
func (c *loopChecker) checkSinkCall(call *ast.CallExpr) {
	argTainted := false
	for _, a := range call.Args {
		if c.taintedExpr(a) {
			argTainted = true
		}
	}
	if !argTainted {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "delete", "clear", "panic", "print", "println":
				return
			}
		}
	case *ast.SelectorExpr:
		if recv := rootObject(c.pass.TypesInfo, fun.X); recv != nil && c.tainted[recv] {
			return // per-element operation on the iterated value
		}
	}
	c.pass.Reportf(call.Pos(), "call publishes iteration-dependent values in map order; collect into a slice and sort first")
}

// sortedAfter reports whether a sort.*/slices.Sort* call on obj follows
// the loop in its enclosing statement list: the sanctioned
// collect-then-sort pattern.
func (c *loopChecker) sortedAfter(obj types.Object) bool {
	list := stmtList(c.parents[c.loop])
	idx := -1
	for i, s := range list {
		if s == ast.Stmt(c.loop) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range list[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			continue
		}
		arg := ast.Unparen(call.Args[0])
		// Unwrap sort.Sort(byName(keys))-style adapter conversions.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 && c.pass.TypesInfo.Types[conv.Fun].IsType() {
			arg = ast.Unparen(conv.Args[0])
		}
		if rootObject(c.pass.TypesInfo, arg) == obj {
			return true
		}
	}
	return false
}

func (c *loopChecker) isLoopVar(obj types.Object) bool {
	return c.tainted[obj] && !c.declaredInside(obj)
}

// declaredInside reports whether obj is declared within the loop body.
func (c *loopChecker) declaredInside(obj types.Object) bool {
	return obj.Pos() >= c.loop.Body.Lbrace && obj.Pos() <= c.loop.Body.Rbrace
}

// taintedExpr reports whether e references a tainted variable.
func (c *loopChecker) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	return c.taintedNode(e)
}

func (c *loopChecker) taintedNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootObject resolves the base variable of x / x.f / x[i] / (*x).f.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// stmtList extracts the statement list of a block-like parent node.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// buildParents maps every node of f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// childNodes returns the direct children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
