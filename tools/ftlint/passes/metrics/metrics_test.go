package metrics_test

import (
	"testing"

	"repro/ftdse/tools/ftlint/ftltest"
	"repro/ftdse/tools/ftlint/passes/metrics"
)

func TestMetrics(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "repro/ftdse/service/met", metrics.Analyzer)
}

// TestDetection fails if the fixture stops depending on the analyzer:
// without the pass, its expectations must go unmatched.
func TestDetection(t *testing.T) {
	mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", "repro/ftdse/service/met")
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) == 0 {
		t.Fatal("fixture passes without the metrics analyzer; it no longer tests detection")
	}
}
