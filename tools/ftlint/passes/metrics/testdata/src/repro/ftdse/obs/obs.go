// Package obs is a stub of the real repro/ftdse/obs registry API: the
// metrics pass matches registration sites by type identity
// (repro/ftdse/obs.Registry), so the fixture only needs the shapes.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

type CounterVec struct{}

func (v *CounterVec) With(value string) *Counter { return &Counter{} }

type Gauge struct{}

type Histogram struct{}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }

func (r *Registry) NewCounterVec(name, help, label string) *CounterVec { return &CounterVec{} }

func (r *Registry) NewGauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {}

func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {}

func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram { return &Histogram{} }

func ExponentialBuckets(start, factor float64, n int) []float64 { return nil }
