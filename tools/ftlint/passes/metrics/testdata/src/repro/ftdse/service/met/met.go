// Package met is the metrics fixture: one case per naming, label and
// bucket rule.
package met

import "repro/ftdse/obs"

type event struct {
	TraceID string
	Engine  string
}

type job struct {
	Fingerprint string
}

func register(r *obs.Registry, dynamic string) {
	// Clean registrations.
	r.NewCounter("ftdse_solves_total", "Solves executed.")
	r.NewCounterVec("ftcluster_dispatches_by_node_total", "Dispatches per node.", "node")
	r.NewGauge("ftdse_queue_depth", "Jobs waiting.")
	r.NewHistogram("ftdse_solve_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	_ = obs.ExponentialBuckets(0.001, 2, 21)

	// Naming violations.
	r.NewCounter(dynamic, "Computed name.")                                                  // want `metric name passed to NewCounter must be a compile-time constant`
	r.NewCounter("http_requests_total", "Foreign prefix.")                                   // want `lacks the ftdse_ or ftcluster_ namespace prefix`
	r.NewCounter("ftdse_solves", "Counter without _total.")                                  // want `counter "ftdse_solves" must end in _total`
	r.NewGauge("ftdse_workers_total", "Gauge posing.")                                       // want `gauge "ftdse_workers_total" must not end in _total`
	r.NewCounter("ftdse_Solves_total", "Upper-case.")                                        // want `not a valid prometheus name`
	r.NewHistogram("ftdse_latency", "No unit.", nil)                                         // want `histogram "ftdse_latency" must end in a unit suffix`
	r.NewCounterFunc("ftdse_evals", "Func counter, no suffix.", func() float64 { return 0 }) // want `counter "ftdse_evals" must end in _total`

	// Label cardinality.
	r.NewCounterVec("ftdse_spans_total", "Per-trace counter.", "trace_id") // want `label "trace_id" has unbounded cardinality`
	r.NewCounterVec("ftdse_errs_total", "Per-error counter.", "error")     // want `label "error" has unbounded cardinality`
	r.NewCounterVec("ftdse_dyn_total", "Dynamic label.", dynamic)          // want `label name must be a compile-time constant`

	// Buckets.
	r.NewHistogram("ftdse_wait_seconds", "Bad buckets.", []float64{0.1, 0.05, 1}) // want `histogram buckets must be strictly increasing`
	_ = obs.ExponentialBuckets(0, 2, 5)                                           // want `ExponentialBuckets start must be > 0`
	_ = obs.ExponentialBuckets(0.1, 1, 5)                                         // want `ExponentialBuckets factor must be > 1`
	_ = obs.ExponentialBuckets(0.1, 2, 0)                                         // want `ExponentialBuckets needs at least one bucket`
}

func observe(vec *obs.CounterVec, ev event, j job) {
	vec.With(ev.Engine).Inc() // bounded: engine names are a fixed set

	vec.With(ev.TraceID).Inc() // want `label value derives from a per-request identity`

	fp := j.Fingerprint
	vec.With(fp).Inc() // want `label value derives from a per-request identity`

	name := ev.Engine
	vec.With(name).Inc()
}

func sanctioned(r *obs.Registry, names []string) {
	for _, n := range names {
		r.NewCounterFunc(n, "table-driven registration", func() float64 { return 0 }) //ftlint:allow metrics fixture-sanctioned dynamic name
	}
}
