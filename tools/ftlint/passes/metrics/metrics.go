// Package metrics enforces the observability naming and cardinality
// contract at obs.Registry registration sites:
//
//   - Metric names are compile-time constants: dashboards, alerts and
//     ftbench reports grep for them, so a name computed at runtime is
//     unfindable. They carry the ftdse_ (node tier) or ftcluster_
//     (coordinator tier) prefix, counters end in _total, histograms end
//     in a unit suffix (_seconds, _ms, _bytes, _ratio), and gauges do
//     not masquerade as counters with a _total suffix.
//
//   - Label values stay bounded: label names such as trace_id or
//     fingerprint are one-value-per-event and explode the registry
//     (obs.Registry keeps every child alive forever), and values fed to
//     CounterVec.With must not derive from trace IDs or problem
//     fingerprints.
//
//   - Literal histogram bucket slices are strictly increasing, and
//     obs.ExponentialBuckets arguments describe a real geometric series
//     (start > 0, factor > 1, n ≥ 1).
package metrics

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "metrics",
	Doc:  "obs.Registry registrations follow the naming and cardinality contract\n\nConst ftdse_/ftcluster_ names with unit suffixes, bounded label values (no trace IDs or fingerprints), monotone histogram buckets.",
	Run:  run,
}

const registryType = "repro/ftdse/obs.Registry"
const counterVecType = "repro/ftdse/obs.CounterVec"

var nameRx = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

var unitSuffixes = []string{"_seconds", "_ms", "_bytes", "_ratio"}

// unboundedLabels are label names whose value space grows with traffic.
var unboundedLabels = map[string]string{
	"fingerprint": "problem fingerprints are unique per problem",
	"trace_id":    "trace IDs are unique per request",
	"traceid":     "trace IDs are unique per request",
	"span_id":     "span IDs are unique per span",
	"job_id":      "job IDs are unique per job",
	"jobid":       "job IDs are unique per job",
	"id":          "ids are unbounded",
	"url":         "URLs are unbounded",
	"path":        "paths are unbounded",
	"error":       "error strings are unbounded",
	"err":         "error strings are unbounded",
}

// taintedSelectors are field/method names whose values must not become
// label values.
var taintedSelectors = map[string]bool{
	"TraceID":     true,
	"SpanID":      true,
	"Fingerprint": true,
	"JobID":       true,
}

// taintedCalls are functions whose results must not become label
// values.
var taintedCalls = map[string]bool{
	"Fingerprint": true,
	"NewTraceID":  true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, ok := registryMethod(info, call); ok {
				checkRegistration(pass, call, method)
			}
			checkBucketCall(pass, call)
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWithTaint(pass, fd)
			}
		}
	}
	return nil, nil
}

// registryMethod reports whether call is a registration method on
// *obs.Registry and returns the method name.
func registryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "New") {
		return "", false
	}
	if typeName(info.Types[sel.X].Type) != registryType {
		return "", false
	}
	return sel.Sel.Name, true
}

func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String()
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, method string) {
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	name, isConst := constStringOf(pass.TypesInfo, nameArg)
	if !isConst {
		pass.Reportf(nameArg.Pos(), "metric name passed to %s must be a compile-time constant so dashboards and alerts can reference it", method)
	} else {
		checkMetricName(pass, nameArg, method, name)
	}

	switch method {
	case "NewCounterVec":
		if len(call.Args) >= 3 {
			checkLabelName(pass, call.Args[2])
		}
	case "NewHistogram":
		if len(call.Args) >= 3 {
			checkLiteralBuckets(pass, call.Args[2])
		}
	}
}

func checkMetricName(pass *analysis.Pass, arg ast.Expr, method, name string) {
	if !nameRx.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q is not a valid prometheus name (want %s)", name, nameRx)
		return
	}
	if !strings.HasPrefix(name, "ftdse_") && !strings.HasPrefix(name, "ftcluster_") {
		pass.Reportf(arg.Pos(), "metric name %q lacks the ftdse_ or ftcluster_ namespace prefix", name)
	}
	switch method {
	case "NewCounter", "NewCounterVec", "NewCounterFunc":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter %q must end in _total", name)
		}
	case "NewGauge", "NewGaugeFunc":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "gauge %q must not end in _total (that suffix is the counter convention)", name)
		}
	case "NewHistogram":
		hasUnit := false
		for _, suffix := range unitSuffixes {
			if strings.HasSuffix(name, suffix) {
				hasUnit = true
				break
			}
		}
		if !hasUnit {
			pass.Reportf(arg.Pos(), "histogram %q must end in a unit suffix (%s)", name, strings.Join(unitSuffixes, ", "))
		}
	}
}

func checkLabelName(pass *analysis.Pass, arg ast.Expr) {
	label, isConst := constStringOf(pass.TypesInfo, arg)
	if !isConst {
		pass.Reportf(arg.Pos(), "label name must be a compile-time constant")
		return
	}
	if why, bad := unboundedLabels[label]; bad {
		pass.Reportf(arg.Pos(), "label %q has unbounded cardinality (%s); the registry keeps every child alive forever", label, why)
	}
}

// checkLiteralBuckets verifies strict monotonicity when the bucket
// bounds are written out as a literal with constant elements. Computed
// slices are obs.ValidateExposition's problem at runtime.
func checkLiteralBuckets(pass *analysis.Pass, arg ast.Expr) {
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return
	}
	prev := 0.0
	havePrev := false
	for _, elt := range lit.Elts {
		tv := pass.TypesInfo.Types[elt]
		if tv.Value == nil {
			return // a computed element: not this pass's call
		}
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		if havePrev && v <= prev {
			pass.Reportf(elt.Pos(), "histogram buckets must be strictly increasing: %v follows %v", v, prev)
			return
		}
		prev, havePrev = v, true
	}
}

// checkBucketCall validates constant obs.ExponentialBuckets arguments.
func checkBucketCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := dataflow.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "ExponentialBuckets" || fn.Pkg() == nil || fn.Pkg().Path() != "repro/ftdse/obs" {
		return
	}
	if len(call.Args) != 3 {
		return
	}
	info := pass.TypesInfo
	if v, ok := constFloatOf(info, call.Args[0]); ok && v <= 0 {
		pass.Reportf(call.Args[0].Pos(), "ExponentialBuckets start must be > 0 (log-scale buckets cannot start at %v)", v)
	}
	if v, ok := constFloatOf(info, call.Args[1]); ok && v <= 1 {
		pass.Reportf(call.Args[1].Pos(), "ExponentialBuckets factor must be > 1 to produce increasing bounds, got %v", v)
	}
	if v, ok := constFloatOf(info, call.Args[2]); ok && v < 1 {
		pass.Reportf(call.Args[2].Pos(), "ExponentialBuckets needs at least one bucket, got %v", v)
	}
}

// checkWithTaint flags CounterVec.With arguments derived from
// per-request identity (trace IDs, fingerprints) anywhere in fd.
func checkWithTaint(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	isTainted := dataflow.Taint(info, fd, func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.SelectorExpr:
			return taintedSelectors[e.Sel.Name]
		case *ast.CallExpr:
			if fn := dataflow.Callee(info, e); fn != nil {
				return taintedCalls[fn.Name()]
			}
		}
		return false
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "With" || typeName(info.Types[sel.X].Type) != counterVecType {
			return true
		}
		for _, arg := range call.Args {
			if isTainted(arg) {
				pass.Reportf(arg.Pos(), "label value derives from a per-request identity (trace ID or fingerprint): unbounded cardinality in the registry")
			}
		}
		return true
	})
}

// constStringOf returns the compile-time string value of e, if any.
func constStringOf(info *types.Info, e ast.Expr) (string, bool) {
	tv := info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constFloatOf returns the compile-time numeric value of e, if any.
func constFloatOf(info *types.Info, e ast.Expr) (float64, bool) {
	tv := info.Types[e]
	if tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}
