// Package fix exercises the harness itself with a toy analyzer that
// flags every return statement.
package fix

func Flagged() int {
	return 1 // want `toy finding`
}

func Suppressed() int {
	return 2 //ftlint:allow toy fixture: suppression applies through the driver
}
