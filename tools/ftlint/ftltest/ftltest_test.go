package ftltest_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/ftltest"
)

// toy flags every return statement: one fixture line expects it, one
// suppresses it with //ftlint:allow toy.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flag every return statement",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "toy finding")
				}
				return true
			})
		}
		return nil, nil
	},
}

// noisy flags every function declaration; the fixture expects none of
// its findings.
var noisy = &analysis.Analyzer{
	Name: "noisy",
	Doc:  "flag every function declaration",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "noisy finding")
				}
			}
		}
		return nil, nil
	},
}

func TestAgreement(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "fix", toy)
}

// TestFailsWithoutAnalyzer pins the property the pass suites rely on:
// a fixture with expectations reports mismatches when its analyzer is
// not run, so the suites guard detection, not only silence.
func TestFailsWithoutAnalyzer(t *testing.T) {
	mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", "fix")
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 1 || !strings.Contains(mismatches[0], "no finding matched") {
		t.Fatalf("want exactly one missing-finding mismatch, got %q", mismatches)
	}
}

func TestUnexpectedFindingsAreMismatches(t *testing.T) {
	mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", "fix", toy, noisy)
	if err != nil {
		t.Fatal(err)
	}
	unexpected := 0
	for _, m := range mismatches {
		if strings.Contains(m, "unexpected finding") && strings.Contains(m, "noisy finding") {
			unexpected++
		}
	}
	if unexpected != 2 {
		t.Fatalf("want 2 unexpected noisy findings, got %q", mismatches)
	}
}
