// Package ftltest is the fixture harness of the ftlint passes: a
// dependency-free analogue of x/tools' analysistest, built on the
// standard library alone (the tools module must build offline).
//
// A fixture package lives under testdata/src/<import-path> of the
// pass's package. Run parses and type-checks it — imports resolve to
// sibling fixture packages when a matching directory exists and to the
// standard library (type-checked from GOROOT source) otherwise — and
// applies the analyzers through vetdriver.RunAnalyzers, the same entry
// point `go vet -vettool` uses. Suppression via //ftlint:allow and the
// "[ftlint:NAME]" rendering therefore behave exactly as in production.
//
// Expectations are embedded in the fixture sources as comments:
//
//	keys = append(keys, k) // want `append inside range over map`
//
// Each `want` comment carries one or more quoted regular expressions
// (Go-quoted or backquoted). Every expectation must be matched by a
// distinct diagnostic reported on the same line, and every diagnostic
// must match an expectation; either direction failing fails the test.
// Block comments (/* want `re` */) work too, which allows pinning a
// diagnostic on a line whose trailing line comment is itself an ftlint
// directive under test.
package ftltest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/vetdriver"
)

// Run checks the fixture package at importPath (under testdata/src)
// against the `// want` expectations embedded in its sources. The
// module path configures the analyzers' view of the containing module,
// exactly like the Module stanza of a vet config.
func Run(t *testing.T, testdata, modulePath, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	mismatches, err := Check(testdata, modulePath, importPath, analyzers...)
	if err != nil {
		t.Fatalf("fixture %s: %v", importPath, err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

// Check is Run without the *testing.T: it returns one description per
// mismatch (an unexpected finding, or an expectation no finding
// matched) and an error when the fixture itself cannot be loaded. An
// empty slice means the fixture and the analyzers agree exactly — so a
// fixture with any expectations necessarily fails when its analyzer is
// left out, which is what makes the suites regression tests for the
// passes' ability to detect, not just their ability to stay quiet.
func Check(testdata, modulePath, importPath string, analyzers ...*analysis.Analyzer) ([]string, error) {
	l := newLoader(filepath.Join(testdata, "src"))
	pkg, files, info, err := l.load(importPath)
	if err != nil {
		return nil, err
	}
	// Mirror the vet driver's fact flow: every sibling fixture package the
	// main fixture (transitively) imports gets a facts-only run first, in
	// dependency order — the loader records packages as their loads
	// complete, so dependencies precede importers — and the accumulated
	// store is handed to the main run.
	module := &analysis.Module{Path: modulePath}
	facts := analysis.NewFactStore()
	for _, dep := range l.loaded {
		if dep.pkg == pkg {
			continue
		}
		vetdriver.RunAnalyzersOpts(l.fset, dep.files, dep.pkg, dep.info, module, analyzers,
			vetdriver.Options{Facts: facts, FactsOnly: true})
	}
	findings := vetdriver.RunAnalyzersOpts(l.fset, files, pkg, info, module, analyzers,
		vetdriver.Options{Facts: facts})

	expects, err := parseExpectations(l.fset, files)
	if err != nil {
		return nil, err
	}
	var mismatches []string
	for _, f := range findings {
		file, line, msg, ok := splitFinding(f)
		if !ok {
			mismatches = append(mismatches, "unparseable finding: "+f)
			continue
		}
		matched := false
		for _, e := range expects[lineKey{file, line}] {
			if !e.matched && e.rx.MatchString(msg) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			mismatches = append(mismatches, "unexpected finding: "+f)
		}
	}
	// Iterate files in their parse order (not map order) so mismatch
	// reports are deterministic.
	for _, f := range files {
		name := l.fset.Position(f.Pos()).Filename
		lines := make([]int, 0, len(expects))
		for key := range expects {
			if key.file == name {
				lines = append(lines, key.line)
			}
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, e := range expects[lineKey{name, line}] {
				if !e.matched {
					mismatches = append(mismatches, fmt.Sprintf("%s:%d: no finding matched %q", name, line, e.rx))
				}
			}
		}
	}
	return mismatches, nil
}

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

type lineKey struct {
	file string
	line int
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// parseExpectations scans fixture comments for `want` markers.
func parseExpectations(fset *token.FileSet, files []*ast.File) (map[lineKey][]*expectation, error) {
	out := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(c.Text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want\t") {
					continue
				}
				rest := strings.TrimSpace(text[len("want"):])
				if !strings.HasPrefix(rest, `"`) && !strings.HasPrefix(rest, "`") {
					continue // prose that happens to start with "want"
				}
				pos := fset.Position(c.Pos())
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want expectation %q", pos, text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want pattern %q", pos, q)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &expectation{rx: rx})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out, nil
}

var findingRx = regexp.MustCompile(`^(.+):(\d+):(\d+): (.*)$`)

// splitFinding parses one rendered finding "file:line:col: msg".
func splitFinding(f string) (file string, line int, msg string, ok bool) {
	m := findingRx.FindStringSubmatch(f)
	if m == nil {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return "", 0, "", false
	}
	return m[1], n, m[4], true
}

// loader type-checks fixture packages. Fixture imports resolve to
// sibling directories under src; everything else comes from the
// standard library, type-checked from GOROOT source so no compiled
// export data is needed.
type loader struct {
	fset   *token.FileSet
	src    string
	pkgs   map[string]*types.Package
	stdlib types.Importer
	// loaded records every fixture package in completion order (a
	// package's imports finish loading before it does), giving Check the
	// dependency-ordered list it runs fact exports over.
	loaded []loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(src string) *loader {
	l := &loader{fset: token.NewFileSet(), src: src, pkgs: make(map[string]*types.Package)}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if st, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, _, _, err := l.load(path)
		return p, err
	}
	return l.stdlib.Import(path)
}

// load parses and type-checks the fixture package at path.
func (l *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	l.loaded = append(l.loaded, loadedPkg{pkg, files, info})
	return pkg, files, info, nil
}
