package analysis

import (
	"encoding/json"
	"go/types"
	"sort"
	"strings"
)

// Facts are the cross-package channel of ftlint: a pass analyzing one
// compilation unit records a small JSON-serializable summary about an
// object (a function's concurrency behaviour, say), and passes
// analyzing dependent units read it back. The driver persists facts in
// the unit's vetx output file — the artifact the `go vet` build system
// already threads from each package to its importers — so analysis
// crosses package boundaries with no side files and full build-cache
// correctness.
//
// The model is deliberately smaller than x/tools': facts attach to
// objects only (keyed by a stable object path within the package), they
// are plain JSON documents rather than gob-registered types, and a pass
// reads its own facts only. That is exactly enough for summary-style
// interprocedural analysis (callee behaviour lookup) without the
// machinery of arbitrary fact kinds.

// A FactStore holds the facts visible to one analysis run: everything
// imported from dependency units plus whatever the current unit's
// passes export. The zero value is unusable; use NewFactStore.
type FactStore struct {
	// m: analyzer name → package path → object key → fact document.
	m map[string]map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]map[string]json.RawMessage)}
}

// ObjectKey names obj stably across compilations of its package:
// "Func" for package functions, "Type.Method" for methods (pointer
// receivers included), "Type" for type names, "Var" for package
// variables. Objects without a package (builtins) have no key.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// export records a fact. Marshalling failures are programmer errors
// (facts are small value structs) and drop the fact silently rather
// than corrupting the store.
func (s *FactStore) export(analyzer, pkgPath, objKey string, fact any) {
	if objKey == "" {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return
	}
	byPkg := s.m[analyzer]
	if byPkg == nil {
		byPkg = make(map[string]map[string]json.RawMessage)
		s.m[analyzer] = byPkg
	}
	byObj := byPkg[pkgPath]
	if byObj == nil {
		byObj = make(map[string]json.RawMessage)
		byPkg[pkgPath] = byObj
	}
	byObj[objKey] = data
}

// lookup decodes a fact into out, reporting whether one was found.
func (s *FactStore) lookup(analyzer, pkgPath, objKey string, out any) bool {
	data, ok := s.m[analyzer][pkgPath][objKey]
	if !ok {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// EncodeFacts serializes the whole store (imported facts included, so
// transitive dependencies flow through intermediate units the way the
// unitchecker protocol expects) in a deterministic key order.
func (s *FactStore) EncodeFacts() []byte {
	data, err := json.Marshal(s.m) // map keys sort deterministically
	if err != nil {
		return []byte("{}")
	}
	return data
}

// DecodeFacts merges a serialized store into s. Unparseable input is
// ignored: a vetx file written by a fact-free tool version is not an
// error, it just carries nothing.
func DecodeFacts(s *FactStore, data []byte) {
	var in map[string]map[string]map[string]json.RawMessage
	if json.Unmarshal(data, &in) != nil {
		return
	}
	for analyzer, byPkg := range in {
		for pkgPath, byObj := range byPkg {
			for objKey, fact := range byObj {
				if _, dup := s.m[analyzer][pkgPath][objKey]; !dup {
					s.export(analyzer, pkgPath, objKey, json.RawMessage(fact))
				}
			}
		}
	}
}

// AllObjectFacts returns the keys of every fact the analyzer holds for
// pkgPath, sorted. Passes use it to enumerate a dependency's summaries.
func (s *FactStore) AllObjectFacts(analyzer, pkgPath string) []string {
	byObj := s.m[analyzer][pkgPath]
	keys := make([]string, 0, len(byObj))
	for k := range byObj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// normPkgPath strips the build system's test-variant decorations
// ("path [path.test]", "path_test") so facts index by the package's
// source identity.
func normPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}
