// Package analysis defines the analyzer interface of ftlint: a
// deliberately small, dependency-free mirror of the exported surface of
// golang.org/x/tools/go/analysis.
//
// The repo's main module is stdlib-only and the tools module must stay
// buildable without network access, so ftlint cannot depend on x/tools.
// Instead it reimplements the two pieces it needs from the standard
// library alone: this analyzer interface, and the "go vet -vettool"
// unitchecker protocol (package vetdriver). The shapes are kept
// source-compatible with x/tools on purpose — if the dependency ever
// becomes available, each pass ports by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a named checker over
// a single type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics, in the -NAME selection
	// flags of the driver, and in //ftlint:allow suppressions. It must
	// be a valid identifier.
	Name string

	// Doc is the help text: a one-line summary, a blank line, then
	// details (the invariant enforced and the sanctioned escapes).
	Doc string

	// Run applies the pass to one package and reports findings through
	// pass.Report. The returned value is unused by ftlint (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)

	// FactTypes declares the fact shapes the pass exports (values whose
	// types document the summaries; the driver only checks the list is
	// non-empty). A pass with facts runs on dependency-only (VetxOnly)
	// units too, so its summaries reach importing packages; fact-free
	// passes are skipped there.
	FactTypes []any
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzed package to an Analyzer's Run: the
// syntax, the type information, and the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Module    *Module

	// Report delivers one finding. Suppression (//ftlint:allow) is
	// applied by the driver, not by passes.
	Report func(Diagnostic)

	// Facts is the cross-package summary store (see facts.go). The
	// driver populates it from the vetx files of the unit's imports and
	// persists whatever the unit's passes export. Nil when the driver
	// runs without fact plumbing (legacy callers); the accessors below
	// degrade to no-ops then.
	Facts *FactStore
}

// ExportObjectFact records a pass-private summary about obj (which must
// belong to the analyzed package) for downstream units to import.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	p.Facts.export(p.Analyzer.Name, normPkgPath(obj.Pkg().Path()), ObjectKey(obj), fact)
}

// ImportObjectFact decodes the summary a dependency unit exported about
// obj into out, reporting whether one exists. Facts exported by the
// current unit are visible too, so intra-package lookups need no
// special case.
func (p *Pass) ImportObjectFact(obj types.Object, out any) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, normPkgPath(obj.Pkg().Path()), ObjectKey(obj), out)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several invariants (hot-path purity, wall-clock bans) apply to
// shipped code only; test files are exempt.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// A Diagnostic is one finding of one pass at a source position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}

// Module describes the Go module containing the analyzed package, as
// reported by the build system. Path is empty when unknown.
type Module struct {
	Path string
}
