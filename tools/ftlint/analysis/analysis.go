// Package analysis defines the analyzer interface of ftlint: a
// deliberately small, dependency-free mirror of the exported surface of
// golang.org/x/tools/go/analysis.
//
// The repo's main module is stdlib-only and the tools module must stay
// buildable without network access, so ftlint cannot depend on x/tools.
// Instead it reimplements the two pieces it needs from the standard
// library alone: this analyzer interface, and the "go vet -vettool"
// unitchecker protocol (package vetdriver). The shapes are kept
// source-compatible with x/tools on purpose — if the dependency ever
// becomes available, each pass ports by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a named checker over
// a single type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics, in the -NAME selection
	// flags of the driver, and in //ftlint:allow suppressions. It must
	// be a valid identifier.
	Name string

	// Doc is the help text: a one-line summary, a blank line, then
	// details (the invariant enforced and the sanctioned escapes).
	Doc string

	// Run applies the pass to one package and reports findings through
	// pass.Report. The returned value is unused by ftlint (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzed package to an Analyzer's Run: the
// syntax, the type information, and the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Module    *Module

	// Report delivers one finding. Suppression (//ftlint:allow) is
	// applied by the driver, not by passes.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several invariants (hot-path purity, wall-clock bans) apply to
// shipped code only; test files are exempt.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// A Diagnostic is one finding of one pass at a source position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}

// Module describes the Go module containing the analyzed package, as
// reported by the build system. Path is empty when unknown.
type Module struct {
	Path string
}
