// Package dataflow is the shared interprocedural core of the ftlint
// passes: a lightweight package-local call graph plus small dataflow
// helpers (local taint propagation, summary fixed points). It stays
// deliberately syntactic — built from the type-checked AST, no SSA —
// because the repo's invariants are about call structure (who joins
// this goroutine, where does this string flow) rather than value
// numerics, and because the tools module must remain stdlib-only.
//
// The intended shape for an interprocedural pass is:
//
//  1. build the Graph for the package,
//  2. compute a per-function summary bottom-up with Fixpoint, consulting
//     pass.ImportObjectFact for callees outside the package,
//  3. export the summaries of this package's functions with
//     pass.ExportObjectFact so dependent units see them,
//  4. report findings using the solved summaries.
package dataflow

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/ftdse/tools/ftlint/analysis"
)

// A Graph is the package-local call graph: one Node per function or
// method declared in the package, with edges to the statically resolved
// callees (direct calls through identifiers, selectors and method
// values; calls through interfaces or function values have no static
// callee and produce no edge).
type Graph struct {
	pass  *analysis.Pass
	nodes map[*types.Func]*Node
}

// A Node is one declared function with its syntax and callees.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Calls lists the statically resolved callees, package-local and
	// foreign, in source order with duplicates preserved.
	Calls []*Call
}

// A Call is one resolved call site within a node.
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// New builds the call graph of the pass's package. Function literals
// are attributed to their enclosing declaration: a call made inside a
// closure is an edge from the declaring function, which matches how
// lifecycle and governance questions are asked.
func New(pass *analysis.Pass) *Graph {
	g := &Graph{pass: pass, nodes: make(map[*types.Func]*Node)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(pass.TypesInfo, call); callee != nil {
					node.Calls = append(node.Calls, &Call{Site: call, Callee: callee})
				}
				return true
			})
			g.nodes[fn] = node
		}
	}
	return g
}

// Node returns the graph node of fn, nil when fn is not declared in
// this package (or has no body here).
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node sorted by source position, so iteration
// order — and therefore any diagnostic order derived from it — is
// deterministic.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Callee statically resolves the function or method a call invokes:
// `f(...)`, `pkg.F(...)`, `recv.M(...)` and method expressions resolve;
// calls of function-typed values, interface methods and built-ins do
// not (nil). Conversions are not calls and resolve to nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	if info.Types[call.Fun].IsType() {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no body anywhere; resolving
				// them would claim knowledge the analysis lacks.
				if !isInterfaceRecv(fn) {
					return fn
				}
			}
			return nil
		}
		// Qualified identifier pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// Fixpoint solves a boolean summary over the package-local call graph:
// seed marks the functions where the property holds directly, and
// propagate decides whether a node acquires the property from one of
// its calls to a holding callee (the callee may be foreign — propagate
// receives the call so it can consult imported facts). Iterates to a
// fixed point; monotone by construction since holding is never unset.
func (g *Graph) Fixpoint(seed func(*Node) bool, propagate func(n *Node, c *Call, calleeHolds func(*types.Func) bool) bool) map[*types.Func]bool {
	holds := make(map[*types.Func]bool, len(g.nodes))
	nodes := g.Nodes()
	for _, n := range nodes {
		if seed(n) {
			holds[n.Fn] = true
		}
	}
	calleeHolds := func(fn *types.Func) bool { return holds[fn] }
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if holds[n.Fn] {
				continue
			}
			for _, c := range n.Calls {
				if propagate(n, c, calleeHolds) {
					holds[n.Fn] = true
					changed = true
					break
				}
			}
		}
	}
	return holds
}

// Taint computes the set of local variables of fn into which a seeded
// expression flows through assignments, short declarations, and range
// statements — a flow-insensitive fixed point, deliberately
// over-approximate (a variable once tainted stays tainted). seed
// reports whether an expression is a taint source by itself; the
// returned predicate additionally reports uses of tainted locals.
func Taint(info *types.Info, fn *ast.FuncDecl, seed func(ast.Expr) bool) func(ast.Expr) bool {
	tainted := make(map[*types.Var]bool)

	// isTainted: source expressions, tainted locals, and compositions
	// that pass string/slice taint through (concat, index, call args are
	// NOT traced — callee behaviour is the passes' job).
	var isTainted func(e ast.Expr) bool
	isTainted = func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		e = ast.Unparen(e)
		if seed(e) {
			return true
		}
		switch e := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return tainted[v]
			}
		case *ast.BinaryExpr:
			return isTainted(e.X) || isTainted(e.Y)
		case *ast.IndexExpr:
			return isTainted(e.X)
		case *ast.SliceExpr:
			return isTainted(e.X)
		case *ast.StarExpr:
			return isTainted(e.X)
		case *ast.SelectorExpr:
			return isTainted(e.X)
		}
		return false
	}

	mark := func(lhs ast.Expr) bool {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				v, ok = info.Uses[id].(*types.Var)
			}
			if ok && v != nil && !tainted[v] {
				tainted[v] = true
				return true
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !isTainted(rhs) {
						continue
					}
					// 1:1 assignments taint their own target; a multi-value
					// rhs (call, map read) taints every target.
					if len(n.Rhs) == len(n.Lhs) {
						changed = mark(n.Lhs[i]) || changed
					} else {
						for _, lhs := range n.Lhs {
							changed = mark(lhs) || changed
						}
					}
				}
			case *ast.RangeStmt:
				if isTainted(n.X) {
					if n.Key != nil {
						changed = mark(n.Key) || changed
					}
					if n.Value != nil {
						changed = mark(n.Value) || changed
					}
				}
			}
			return true
		})
	}
	return isTainted
}
