// ftclusterd is the ftdse cluster coordinator: it shards solve jobs
// across a set of ftdsed nodes by consistent-hashing their canonical
// fingerprints (cache affinity), health-checks the nodes and re-maps
// shards when one dies, steals work from hot shards, journals every
// admitted job to a write-ahead log, and ingests periodic search
// checkpoints so an in-flight solve killed with its node resumes on a
// survivor from its last incumbent design.
//
// Usage:
//
//	ftclusterd -node n1=http://host1:8385 -node n2=http://host2:8385
//	           [-addr :8390] [-self http://this-host:8390]
//	           [-journal jobs.wal] [-checkpoint 1s] [-health 1s]
//	           [-fail-after 3] [-max-pending 1024] [-drain 30s]
//	           [-pprof] [-log-level info]
//
// The job surface speaks the ftdsed wire protocol — POST /solve
// (?wait=1), POST /solve/batch, GET/DELETE /jobs/{id},
// GET /jobs/{id}/events (SSE) — so the typed client works unchanged.
// The cluster surface adds POST /cluster/checkpoints (node pushes),
// GET /cluster/checkpoints/{fp} (warm-start fetch),
// GET /cluster/shards, GET /metrics (Prometheus text exposition),
// GET /healthz and GET /readyz. With -pprof the net/http/pprof profiles
// mount under /debug/pprof/ and an on-demand runtime/trace capture
// under /debug/rtrace; the legacy expvar view stays at /debug/vars.
//
// Logs are structured JSON (log/slog) on stderr; every job's lines —
// admission, dispatches, failovers, conclusion — carry its trace_id,
// propagated from the Ftdse-Trace-Id request header (or minted at
// admission).
//
// On SIGINT/SIGTERM the coordinator stops its loops and exits; solves
// in flight keep running on their nodes, and a restarted coordinator
// re-adopts them from the journal.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/ftdse/cluster"
	"repro/ftdse/obs"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []cluster.Node

func (n *nodeFlags) String() string {
	parts := make([]string, len(*n))
	for i, nd := range *n {
		parts[i] = nd.Name + "=" + nd.URL
	}
	return strings.Join(parts, ",")
}

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, cluster.Node{Name: name, URL: strings.TrimRight(url, "/")})
	return nil
}

func main() {
	var nodes nodeFlags
	flag.Var(&nodes, "node", "solver node as name=url (repeat per node)")
	addr := flag.String("addr", ":8390", "listen address")
	self := flag.String("self", "", "advertised base URL nodes push checkpoints to (default http://127.0.0.1<addr>)")
	journal := flag.String("journal", "", "write-ahead job journal path (empty = no durability)")
	checkpoint := flag.Duration("checkpoint", time.Second, "search checkpoint push cadence")
	health := flag.Duration("health", time.Second, "node readiness probe cadence")
	failAfter := flag.Int("fail-after", 3, "consecutive probe failures before a node is dead")
	maxPending := flag.Int("max-pending", 1024, "open job cap (submissions beyond it get 429)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member (0 = default 128)")
	drain := flag.Duration("drain", 30*time.Second, "loop shutdown timeout on exit")
	pprof := flag.Bool("pprof", false, "serve /debug/pprof/ and /debug/rtrace profiling endpoints")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))

	if len(nodes) == 0 {
		logger.Error("ftclusterd: at least one -node name=url is required")
		os.Exit(1)
	}
	if *self == "" {
		a := *addr
		if strings.HasPrefix(a, ":") {
			a = "127.0.0.1" + a
		}
		*self = "http://" + a
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:              nodes,
		Journal:            *journal,
		CheckpointInterval: *checkpoint,
		HealthInterval:     *health,
		FailAfter:          *failAfter,
		MaxPending:         *maxPending,
		VNodes:             *vnodes,
		Logger:             logger,
	})
	if err != nil {
		logger.Error("ftclusterd failed to start", "error", err.Error())
		os.Exit(1)
	}
	expvar.Publish("ftclusterd", coord.Vars())

	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	if *pprof {
		obs.RegisterDebug(mux)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	if err := coord.Start(*self); err != nil {
		logger.Error("ftclusterd failed to start", "error", err.Error())
		os.Exit(1)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("ftclusterd listening", "addr", *addr, "self", *self,
			"nodes", len(nodes), "journal", *journal, "pprof", *pprof)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("ftclusterd server failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("ftclusterd stopping", "signal", s.String(), "timeout", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := coord.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ftclusterd: shutdown incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ftclusterd: server shutdown: %v\n", err)
	}
	logger.Info("ftclusterd stopped")
}

// parseLevel maps the -log-level flag onto slog levels, defaulting to
// info for unknown values.
func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
