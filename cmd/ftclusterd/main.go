// ftclusterd is the ftdse cluster coordinator: it shards solve jobs
// across a set of ftdsed nodes by consistent-hashing their canonical
// fingerprints (cache affinity), health-checks the nodes and re-maps
// shards when one dies, steals work from hot shards, journals every
// admitted job to a write-ahead log, and ingests periodic search
// checkpoints so an in-flight solve killed with its node resumes on a
// survivor from its last incumbent design.
//
// Usage:
//
//	ftclusterd -node n1=http://host1:8385 -node n2=http://host2:8385
//	           [-addr :8390] [-self http://this-host:8390]
//	           [-journal jobs.wal] [-checkpoint 1s] [-health 1s]
//	           [-fail-after 3] [-max-pending 1024] [-drain 30s]
//
// The job surface speaks the ftdsed wire protocol — POST /solve
// (?wait=1), POST /solve/batch, GET/DELETE /jobs/{id},
// GET /jobs/{id}/events (SSE) — so the typed client works unchanged.
// The cluster surface adds POST /cluster/checkpoints (node pushes),
// GET /cluster/checkpoints/{fp} (warm-start fetch),
// GET /cluster/shards, GET /metrics, GET /healthz and GET /readyz.
//
// On SIGINT/SIGTERM the coordinator stops its loops and exits; solves
// in flight keep running on their nodes, and a restarted coordinator
// re-adopts them from the journal.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/ftdse/cluster"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []cluster.Node

func (n *nodeFlags) String() string {
	parts := make([]string, len(*n))
	for i, nd := range *n {
		parts[i] = nd.Name + "=" + nd.URL
	}
	return strings.Join(parts, ",")
}

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, cluster.Node{Name: name, URL: strings.TrimRight(url, "/")})
	return nil
}

func main() {
	var nodes nodeFlags
	flag.Var(&nodes, "node", "solver node as name=url (repeat per node)")
	addr := flag.String("addr", ":8390", "listen address")
	self := flag.String("self", "", "advertised base URL nodes push checkpoints to (default http://127.0.0.1<addr>)")
	journal := flag.String("journal", "", "write-ahead job journal path (empty = no durability)")
	checkpoint := flag.Duration("checkpoint", time.Second, "search checkpoint push cadence")
	health := flag.Duration("health", time.Second, "node readiness probe cadence")
	failAfter := flag.Int("fail-after", 3, "consecutive probe failures before a node is dead")
	maxPending := flag.Int("max-pending", 1024, "open job cap (submissions beyond it get 429)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member (0 = default 128)")
	drain := flag.Duration("drain", 30*time.Second, "loop shutdown timeout on exit")
	flag.Parse()

	if len(nodes) == 0 {
		log.Fatal("ftclusterd: at least one -node name=url is required")
	}
	if *self == "" {
		a := *addr
		if strings.HasPrefix(a, ":") {
			a = "127.0.0.1" + a
		}
		*self = "http://" + a
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:              nodes,
		Journal:            *journal,
		CheckpointInterval: *checkpoint,
		HealthInterval:     *health,
		FailAfter:          *failAfter,
		MaxPending:         *maxPending,
		VNodes:             *vnodes,
	})
	if err != nil {
		log.Fatalf("ftclusterd: %v", err)
	}
	expvar.Publish("ftclusterd", coord.Vars())

	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	if err := coord.Start(*self); err != nil {
		log.Fatalf("ftclusterd: %v", err)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ftclusterd listening on %s (self %s, %d nodes, journal %q)",
			*addr, *self, len(nodes), *journal)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("ftclusterd: %v", err)
	case s := <-sig:
		log.Printf("ftclusterd: %v — stopping (timeout %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := coord.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ftclusterd: shutdown incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ftclusterd: server shutdown: %v\n", err)
	}
	log.Printf("ftclusterd: stopped")
}
