// Command ftexp regenerates the paper's evaluation tables and figures:
// Table 1a/1b/1c (fault-tolerance overheads of MXR vs NFT), Figure 10
// (deviation of MX/MR/SFX from MXR) and the cruise-controller example.
//
// Usage:
//
//	ftexp -exp all                  # default smoke-scale run
//	ftexp -exp table1b -seeds 15    # paper-scale instance count
//	ftexp -exp cc -iters 1500
//	ftexp -exp table1a -workers 1   # sequential move evaluation
//	ftexp -exp table1c -engine portfolio  # race tabu vs simulated annealing
//
// Ctrl-C stops the sweep after the current optimization run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ftdse"
	"repro/ftdse/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1a, table1b, table1c, figure10, cc, all")
		seeds   = flag.Int("seeds", 0, "random applications per dimension (0 = default)")
		iters   = flag.Int("iters", 0, "tabu iterations per run (0 = default)")
		timeLim = flag.Duration("time", 0, "time limit per optimization run (0 = default)")
		workers = flag.Int("workers", 0, "concurrent move evaluations per run (0 = all CPUs, 1 = sequential)")
		engine  = flag.String("engine", "default", "search engine per run: "+strings.Join(ftdse.Engines(), ", "))
		paper   = flag.Bool("paper", false, "use the paper-protocol configuration (15 seeds, long runs)")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress on stderr")
		format  = flag.String("format", "text", "output format: text, csv, json")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "ftexp: unknown format %q (text, csv, json)\n", *format)
		os.Exit(1)
	}

	// The emitters render one shared column schema per table (see
	// bench/columns.go), so the text, CSV and JSON outputs carry the
	// same data by construction.
	emitOverheads := func(title, dimHeader string, label func(bench.Dimension) string, rows []bench.OverheadRow) {
		switch *format {
		case "csv":
			check(bench.WriteOverheadsCSV(os.Stdout, rows))
		case "json":
			check(bench.WriteOverheadsJSON(os.Stdout, rows))
		default:
			fmt.Println(bench.FormatOverheads(title, dimHeader, label, rows))
		}
	}
	emitDeviations := func(rows []bench.DeviationRow) {
		switch *format {
		case "csv":
			check(bench.WriteDeviationsCSV(os.Stdout, rows))
		case "json":
			check(bench.WriteDeviationsJSON(os.Stdout, rows))
		default:
			fmt.Println(bench.FormatDeviations(rows))
		}
	}
	emitCC := func(rows []bench.CCRow) {
		switch *format {
		case "csv":
			check(bench.WriteCCCSV(os.Stdout, rows))
		case "json":
			check(bench.WriteCCJSON(os.Stdout, rows))
		default:
			fmt.Println(bench.FormatCC(rows))
		}
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *iters > 0 {
		cfg.MaxIterations = *iters
	}
	if *timeLim > 0 {
		cfg.TimeLimit = *timeLim
	}
	cfg.Workers = *workers
	eng, err := ftdse.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftexp: %v\n", err)
		os.Exit(1)
	}
	cfg.Engine = eng
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	// run executes one experiment and reports whether it was
	// interrupted. An interruption (Ctrl-C) is not fatal: the rows
	// accumulated before it are still formatted, then the sweep stops.
	run := func(name string) bool {
		switch name {
		case "table1a":
			rows, err := cfg.Table1a(ctx)
			interrupted := checkPartial(err)
			emitOverheads("Table 1a: % overhead of MXR vs NFT over application size",
				"dimension", bench.Table1aLabel, rows)
			return interrupted
		case "table1b":
			rows, err := cfg.Table1b(ctx)
			interrupted := checkPartial(err)
			emitOverheads("Table 1b: % overhead over number of faults (60 procs, 4 nodes, µ=5ms)",
				"faults", bench.Table1bLabel, rows)
			return interrupted
		case "table1c":
			rows, err := cfg.Table1c(ctx)
			interrupted := checkPartial(err)
			emitOverheads("Table 1c: % overhead over fault duration (20 procs, 2 nodes, k=3)",
				"duration", bench.Table1cLabel, rows)
			return interrupted
		case "figure10":
			rows, err := cfg.Figure10(ctx)
			interrupted := checkPartial(err)
			emitDeviations(rows)
			return interrupted
		case "cc":
			ccCfg := cfg
			if *iters <= 0 && !*paper {
				// The CC needs a real search budget to reproduce the
				// paper's outcome (MXR schedulable, MX/MR not).
				ccCfg.MaxIterations = 1500
			}
			rows, err := ccCfg.CruiseController(ctx)
			interrupted := checkPartial(err)
			emitCC(rows)
			return interrupted
		default:
			fmt.Fprintf(os.Stderr, "ftexp: unknown experiment %q\n", name)
			os.Exit(1)
			return false
		}
	}
	interrupted := false
	if *exp == "all" {
		for _, name := range []string{"table1a", "table1b", "table1c", "figure10", "cc"} {
			if run(name) {
				interrupted = true
				break
			}
		}
	} else {
		interrupted = run(*exp)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "ftexp: interrupted after %v — partial results above\n",
			time.Since(start).Round(time.Second))
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "ftexp: done in %v\n", time.Since(start).Round(time.Second))
}

// checkPartial distinguishes an interruption (rows so far still get
// printed) from a real error (fatal).
func checkPartial(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	check(err)
	return false
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftexp: %v\n", err)
		os.Exit(1)
	}
}
