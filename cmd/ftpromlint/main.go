// Command ftpromlint validates a Prometheus text-format exposition
// (version 0.0.4) against the guarantees the repo's /metrics endpoints
// promise: parseable samples, HELP/TYPE ordering, contiguous metric
// families, no duplicate samples, and cumulative histogram buckets
// with a +Inf bucket equal to _count. CI pipes live daemon scrapes
// through it so the exposition format stays valid as metrics evolve.
//
// Usage:
//
//	ftpromlint [metrics.txt]
//
// With no file argument the exposition is read from stdin. Exit
// status: 0 when the exposition is valid, 1 on a violation or usage
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/ftdse/obs"
)

func main() {
	flag.Parse()
	var r io.Reader = os.Stdin
	name := "<stdin>"
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r, name = f, flag.Arg(0)
	default:
		fatalf("at most one exposition file argument (got %d)", flag.NArg())
	}
	if err := obs.ValidateExposition(r); err != nil {
		fatalf("%s: %v", name, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftpromlint: "+format+"\n", args...)
	os.Exit(1)
}
