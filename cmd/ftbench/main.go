// Command ftbench runs the reproducible benchmark corpus and manages
// its machine-readable reports — the performance trajectory of this
// repository.
//
// Usage:
//
//	ftbench [-short] [-seed 1] [-rev dev] [-out FILE] [-run substr]
//	ftbench compare OLD.json NEW.json [-threshold 10%]
//	ftbench corpus [-short] [-seed 1] -dir DIR
//
// The default command runs the corpus (size classes × graph shapes ×
// engines, deterministic for a seed) and writes BENCH_<rev>.json with
// per-case wall time, iterations, final cost, schedulability and
// allocations, plus corpus-level median and p95 wall times.
//
// compare diffs two reports and exits with status 1 when NEW regresses
// against OLD beyond the threshold (a percentage; "10%" and "10" both
// mean ten percent) — the CI regression gate. Status 2 is a usage or
// I/O error, 0 a clean comparison.
//
// corpus writes each generated problem of the corpus as a JSON document
// into a directory; equal seeds produce byte-identical files, which is
// the reproducibility contract behind report comparability.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"repro/ftdse"
	"repro/ftdse/bench"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			os.Exit(runCompare(args[1:]))
		case "corpus":
			os.Exit(runCorpusDump(args[1:]))
		}
	}
	os.Exit(runCorpus(args))
}

// runCorpus is the default command: measure the corpus, emit the report.
func runCorpus(args []string) int {
	fs := flag.NewFlagSet("ftbench", flag.ExitOnError)
	var (
		short = fs.Bool("short", false, "run the reduced corpus (small+medium sizes, default+sa engines)")
		seed  = fs.Int64("seed", 1, "master seed of the corpus")
		rev   = fs.String("rev", "dev", "revision label recorded in the report and the default output name")
		out   = fs.String("out", "", "output file (default BENCH_<rev>.json, \"-\" for stdout)")
		run   = fs.String("run", "", "only run cases whose name contains this substring")
		quiet = fs.Bool("quiet", false, "suppress per-case progress on stderr")
	)
	fs.Parse(args)

	cases := bench.FilterCases(bench.Corpus(*seed, *short), *run)
	if len(cases) == 0 {
		fmt.Fprintf(os.Stderr, "ftbench: no corpus case matches -run %q\n", *run)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	report, err := bench.RunCorpus(ctx, cases, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	report.Rev = *rev
	report.Seed = *seed
	report.Short = *short

	path := *out
	if path == "" {
		path = "BENCH_" + sanitize(*rev) + ".json"
	}
	if path == "-" {
		if err := bench.WriteReport(os.Stdout, report); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			return 2
		}
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	werr := bench.WriteReport(f, report)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", werr)
		return 2
	}
	fmt.Fprintf(os.Stderr, "ftbench: %d cases, median %.1fms, p95 %.1fms -> %s\n",
		report.Summary.Cases, report.Summary.MedianWallMS, report.Summary.P95WallMS, path)
	return 0
}

// runCompare diffs two reports; exit 1 signals a regression.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("ftbench compare", flag.ExitOnError)
	threshold := fs.String("threshold", "10%", "tolerated relative worsening, as a percentage")
	// The flag package stops at the first positional argument; re-parse
	// after each one so "compare OLD NEW -threshold 10%" — the
	// documented form — works as well as flags-first.
	var paths []string
	fs.Parse(args)
	for fs.NArg() > 0 {
		paths = append(paths, fs.Arg(0))
		fs.Parse(fs.Args()[1:])
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ftbench compare OLD.json NEW.json [-threshold 10%]")
		return 2
	}
	th, err := parseThreshold(*threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	old, err := readReport(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	new, err := readReport(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	regs := bench.Compare(old, new, th)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "ftbench: no regression (%s -> %s, threshold %.1f%%)\n",
			old.Rev, new.Rev, th*100)
		return 0
	}
	fmt.Fprintf(os.Stderr, "ftbench: %d regression(s) from %s to %s (threshold %.1f%%):\n",
		len(regs), old.Rev, new.Rev, th*100)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %v\n", r)
	}
	return 1
}

// runCorpusDump writes every generated problem of the corpus to a
// directory, one JSON document per case.
func runCorpusDump(args []string) int {
	fs := flag.NewFlagSet("ftbench corpus", flag.ExitOnError)
	var (
		short = fs.Bool("short", false, "dump the reduced corpus")
		seed  = fs.Int64("seed", 1, "master seed of the corpus")
		dir   = fs.String("dir", "", "output directory (required)")
	)
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: ftbench corpus -dir DIR [-short] [-seed N]")
		return 2
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		return 2
	}
	for _, c := range bench.Corpus(*seed, *short) {
		path := filepath.Join(*dir, sanitize(c.Name)+".json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			return 2
		}
		werr := ftdse.WriteProblem(f, c.Problem())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s: %v\n", c.Name, werr)
			return 2
		}
	}
	return 0
}

// parseThreshold parses a percentage ("10%", "10", "2.5") into a
// fraction.
func parseThreshold(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid threshold %q (want a percentage like 10%%)", s)
	}
	return v / 100, nil
}

func readReport(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.ReadReport(f)
}

// sanitize makes a label safe as a file-name component.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}
