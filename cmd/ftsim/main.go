// Command ftsim synthesizes a fault-tolerant implementation of a design
// problem and then runs a fault-injection campaign on it: the schedule
// tables are executed under every fault scenario of the hypothesis (or a
// large adversarial+random sample when enumeration is infeasible), and
// the observed completions are compared against the worst-case analysis.
//
// Usage:
//
//	ftsim -in app.json [-strategy mxr] [-engine default] [-iters 500]
//	      [-samples 20000]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ftdse"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (required)")
		strategy = flag.String("strategy", "mxr", "optimization strategy: "+strings.Join(ftdse.StrategyNames(), ", "))
		engine   = flag.String("engine", "default", "search engine: "+strings.Join(ftdse.Engines(), ", "))
		iters    = flag.Int("iters", 500, "maximum tabu-search iterations")
		timeLim  = flag.Duration("time", 60*time.Second, "optimization time limit")
		samples  = flag.Int("samples", 10000, "random scenarios when enumeration is infeasible")
		seed     = flag.Int64("seed", 1, "sampling seed")
		engSeed  = flag.Int64("engine-seed", 0, "seed for stochastic engines (0 = fixed default)")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	prob, err := ftdse.ReadProblem(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	strat, err := ftdse.ParseStrategy(*strategy)
	if err != nil {
		fatalf("%v", err)
	}
	eng, err := ftdse.ParseEngine(*engine)
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := ftdse.NewSolver(
		ftdse.WithStrategy(strat),
		ftdse.WithEngine(eng),
		ftdse.WithSeed(*engSeed),
		ftdse.WithMaxIterations(*iters),
		ftdse.WithTimeLimit(*timeLim),
	).Solve(ctx, prob)
	// Restore default SIGINT handling: a second Ctrl-C must be able to
	// kill the campaign phase below.
	stop()
	if err != nil {
		fatalf("%v", err)
	}
	if res.Stopped == ftdse.StopCanceled {
		fmt.Fprintln(os.Stderr, "ftsim: optimization interrupted — skipping the fault-injection campaign")
		os.Exit(130)
	}
	if err := ftdse.ValidateSchedule(res.Schedule); err != nil {
		fatalf("internal: synthesized schedule failed validation: %v", err)
	}
	fmt.Printf("synthesized with %v: %v (%d processes, %v)\n\n",
		res.Strategy, res.Cost, prob.NumProcesses(), prob.Faults())

	campaign := ftdse.Campaign{Samples: *samples, Seed: *seed}
	cr := campaign.Run(res.Schedule)
	fmt.Print(cr.Format(res.Schedule))
	if cr.Violations > 0 && res.Schedulable() {
		fmt.Fprintln(os.Stderr, "ftsim: violations despite schedulable analysis — this is a bug")
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftsim: "+format+"\n", args...)
	os.Exit(1)
}
