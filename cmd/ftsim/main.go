// Command ftsim synthesizes a fault-tolerant implementation of a design
// problem and then runs a fault-injection campaign on it: the schedule
// tables are executed under every fault scenario of the hypothesis (or a
// large adversarial+random sample when enumeration is infeasible), and
// the observed completions are compared against the worst-case analysis.
//
// Usage:
//
//	ftsim -in app.json [-strategy mxr] [-iters 500] [-samples 20000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sysio"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (required)")
		strategy = flag.String("strategy", "mxr", "optimization strategy: mxr, mx, mr, sfx, nft")
		iters    = flag.Int("iters", 500, "maximum tabu-search iterations")
		timeLim  = flag.Duration("time", 60*time.Second, "optimization time limit")
		samples  = flag.Int("samples", 10000, "random scenarios when enumeration is infeasible")
		seed     = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	prob, err := sysio.ReadProblem(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	var strat core.Strategy
	switch *strategy {
	case "mxr":
		strat = core.MXR
	case "mx":
		strat = core.MX
	case "mr":
		strat = core.MR
	case "sfx":
		strat = core.SFX
	case "nft":
		strat = core.NFT
	default:
		fatalf("unknown strategy %q", *strategy)
	}
	opts := core.DefaultOptions(strat)
	opts.MaxIterations = *iters
	opts.TimeLimit = *timeLim
	res, err := core.Optimize(prob, opts)
	if err != nil {
		fatalf("%v", err)
	}
	if err := sched.ValidateSchedule(res.Schedule); err != nil {
		fatalf("internal: synthesized schedule failed validation: %v", err)
	}
	fmt.Printf("synthesized with %v: %v (%d processes, %v)\n\n",
		res.Strategy, res.Cost, prob.App.NumProcesses(), prob.Faults)

	campaign := sim.Campaign{Samples: *samples, Seed: *seed}
	cr := campaign.Run(res.Schedule)
	fmt.Print(cr.Format(res.Schedule))
	if cr.Violations > 0 && res.Cost.Schedulable() {
		fmt.Fprintln(os.Stderr, "ftsim: violations despite schedulable analysis — this is a bug")
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftsim: "+format+"\n", args...)
	os.Exit(1)
}
