// Command fttrace renders a flight-recorder trace (the JSONL document
// written by ftdse.WriteTrace, ftsched -trace, or a cluster job with
// the flight recorder enabled) as a human-readable timeline plus a
// per-phase summary.
//
// Usage:
//
//	fttrace [-summary] [-max 0] [trace.jsonl]
//
// With no file argument the trace is read from stdin. Exit status: 0 on
// success, 1 on usage, input, or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/ftdse"
)

func main() {
	var (
		summary = flag.Bool("summary", false, "print only the per-phase summary, no timeline")
		maxRows = flag.Int("max", 0, "timeline rows to print (0 = all)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	default:
		fatalf("at most one trace file argument (got %d)", flag.NArg())
	}

	tr, err := ftdse.ReadTrace(r)
	if err != nil {
		fatalf("%v", err)
	}
	render(os.Stdout, tr, *summary, *maxRows)
}

// render prints the trace header, the event timeline (unless
// summaryOnly), and the per-phase summary.
func render(w io.Writer, tr *ftdse.Trace, summaryOnly bool, maxRows int) {
	fmt.Fprintf(w, "trace: %d events", len(tr.Events))
	if tr.Dropped > 0 {
		fmt.Fprintf(w, " (+%d dropped by the ring)", tr.Dropped)
	}
	if n := len(tr.Events); n > 0 {
		fmt.Fprintf(w, ", %.1fms", tr.Events[n-1].ElapsedMs)
	}
	fmt.Fprintln(w)

	if !summaryOnly {
		fmt.Fprintf(w, "%8s %10s  %s\n", "seq", "elapsed", "event")
		rows := tr.Events
		truncated := 0
		if maxRows > 0 && len(rows) > maxRows {
			truncated = len(rows) - maxRows
			rows = rows[:maxRows]
		}
		for i := range rows {
			ev := &rows[i]
			fmt.Fprintf(w, "%8d %8.2fms  %s\n", ev.Seq, ev.ElapsedMs, describe(ev))
		}
		if truncated > 0 {
			fmt.Fprintf(w, "%8s %10s  ... %d more events (raise -max)\n", "", "", truncated)
		}
	}

	printSummary(w, tr)
}

// describe renders one event as a single human-readable line body.
func describe(ev *ftdse.SearchEvent) string {
	var b strings.Builder
	b.WriteString(ev.Kind)
	if ev.Phase != "" {
		b.WriteString(" ")
		b.WriteString(ev.Phase)
	}
	switch ev.Kind {
	case ftdse.EventRunStart:
		fmt.Fprintf(&b, " strategy=%s engine=%s", ev.Strategy, ev.Engine)
	case ftdse.EventIncumbent, ftdse.EventWarmStart, ftdse.EventRunEnd:
		if ev.Kind == ftdse.EventWarmStart {
			fmt.Fprintf(&b, " adopted=%v", ev.Adopted)
		}
		if ev.Iteration > 0 {
			fmt.Fprintf(&b, " iter=%d", ev.Iteration)
		}
		fmt.Fprintf(&b, " makespan=%dµs", ev.MakespanUs)
		if ev.Schedulable {
			b.WriteString(" schedulable")
		} else {
			fmt.Fprintf(&b, " tardy=%dµs", ev.TardinessUs)
		}
		if ev.Cause != "" {
			fmt.Fprintf(&b, " cause=%s", ev.Cause)
		}
	case ftdse.EventSweep:
		fmt.Fprintf(&b, " moves=%d evaluated=%d cache_hits=%d", ev.Moves, ev.Evaluated, ev.CacheHits)
	case ftdse.EventPhaseExit:
		if ev.Iteration > 0 {
			fmt.Fprintf(&b, " iter=%d", ev.Iteration)
		}
	}
	return b.String()
}

// phaseStat aggregates one phase label across the trace. Time is the
// sum of enter→exit spans; with forked racers (portfolio engines) the
// spans of concurrently open phases overlap, so the per-phase times can
// legitimately sum to more than the run's wall clock.
type phaseStat struct {
	name       string
	spans      int
	timeMs     float64
	incumbents int
	openedAt   float64
	openDepth  int
}

// printSummary renders the per-phase table plus the evaluator sweep
// totals.
func printSummary(w io.Writer, tr *ftdse.Trace) {
	stats := map[string]*phaseStat{}
	get := func(name string) *phaseStat {
		s := stats[name]
		if s == nil {
			s = &phaseStat{name: name}
			stats[name] = s
		}
		return s
	}
	var moves, evaluated, hits int
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case ftdse.EventPhaseEnter:
			s := get(ev.Phase)
			if s.openDepth == 0 {
				s.openedAt = ev.ElapsedMs
			}
			s.openDepth++
		case ftdse.EventPhaseExit:
			s := get(ev.Phase)
			if s.openDepth > 0 {
				s.openDepth--
				if s.openDepth == 0 {
					s.timeMs += ev.ElapsedMs - s.openedAt
					s.spans++
				}
			}
		case ftdse.EventIncumbent:
			if ev.Phase != "" {
				get(ev.Phase).incumbents++
			}
		case ftdse.EventSweep:
			moves += ev.Moves
			evaluated += ev.Evaluated
			hits += ev.CacheHits
		}
	}
	if len(stats) > 0 {
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "per-phase summary:")
		fmt.Fprintf(w, "  %-24s %6s %10s %11s\n", "phase", "spans", "time", "incumbents")
		for _, name := range names {
			s := stats[name]
			fmt.Fprintf(w, "  %-24s %6d %8.2fms %11d\n", s.name, s.spans, s.timeMs, s.incumbents)
		}
	}
	if moves > 0 {
		fmt.Fprintf(w, "evaluator: %d moves, %d scheduling passes, %d cache hits (%.1f%% hit rate)\n",
			moves, evaluated, hits, 100*float64(hits)/float64(moves))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fttrace: "+format+"\n", args...)
	os.Exit(1)
}
