// ftdsed is the ftdse solve daemon: it serves the optimizer over HTTP
// with a bounded job queue, a worker pool, an LRU result cache keyed by
// canonical problem fingerprints, and SSE streaming of incumbent
// solutions (anytime results) while the tabu search runs.
//
// Usage:
//
//	ftdsed [-addr :8385] [-queue 64] [-pool N] [-cache 128]
//	       [-max-time-limit 0] [-drain 30s] [-pprof] [-log-level info]
//
// Endpoints: POST /solve (?wait=1), POST /solve/batch, GET /jobs/{id},
// DELETE /jobs/{id}, GET /jobs/{id}/events (SSE), GET /metrics
// (Prometheus text exposition), GET /healthz, plus the process-wide
// expvar page at /debug/vars with the service metrics published as
// "ftdsed". With -pprof the net/http/pprof profiles mount under
// /debug/pprof/ and an on-demand runtime/trace capture under
// /debug/rtrace.
//
// Logs are structured JSON (log/slog) on stderr; every solve's lines
// carry its trace_id, propagated from the Ftdse-Trace-Id request header
// (or minted on arrival).
//
// On SIGINT/SIGTERM the daemon drains: it stops admitting work, cancels
// running solves — each returns its best-so-far design within one
// scheduling pass — and exits once every job reached a terminal state
// or the drain timeout fires.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/ftdse/obs"
	"repro/ftdse/service"
)

func main() {
	addr := flag.String("addr", ":8385", "listen address")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	pool := flag.Int("pool", runtime.GOMAXPROCS(0), "concurrent solves (worker pool size)")
	cache := flag.Int("cache", 128, "result cache entries (negative disables)")
	maxLimit := flag.Duration("max-time-limit", 0, "cap on per-request time limits (0 = uncapped)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain timeout on shutdown")
	pprof := flag.Bool("pprof", false, "serve /debug/pprof/ and /debug/rtrace profiling endpoints")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))

	svc := service.New(service.Config{
		QueueSize:    *queue,
		PoolWorkers:  *pool,
		CacheSize:    *cache,
		MaxTimeLimit: *maxLimit,
		Logger:       logger,
	})
	expvar.Publish("ftdsed", svc.Vars())

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	if *pprof {
		obs.RegisterDebug(mux)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() {
		logger.Info("ftdsed listening", "addr", *addr,
			"queue", *queue, "pool", *pool, "cache", *cache, "pprof", *pprof)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("ftdsed server failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("ftdsed draining", "signal", s.String(), "timeout", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ftdsed: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ftdsed: server shutdown: %v\n", err)
	}
	logger.Info("ftdsed stopped")
}

// parseLevel maps the -log-level flag onto slog levels, defaulting to
// info for unknown values.
func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
