// ftdsed is the ftdse solve daemon: it serves the optimizer over HTTP
// with a bounded job queue, a worker pool, an LRU result cache keyed by
// canonical problem fingerprints, and SSE streaming of incumbent
// solutions (anytime results) while the tabu search runs.
//
// Usage:
//
//	ftdsed [-addr :8385] [-queue 64] [-pool N] [-cache 128]
//	       [-max-time-limit 0] [-drain 30s]
//
// Endpoints: POST /solve (?wait=1), POST /solve/batch, GET /jobs/{id},
// DELETE /jobs/{id}, GET /jobs/{id}/events (SSE), GET /metrics,
// GET /healthz, plus the process-wide expvar page at /debug/vars with
// the service metrics published as "ftdsed".
//
// On SIGINT/SIGTERM the daemon drains: it stops admitting work, cancels
// running solves — each returns its best-so-far design within one
// scheduling pass — and exits once every job reached a terminal state
// or the drain timeout fires.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/ftdse/service"
)

func main() {
	addr := flag.String("addr", ":8385", "listen address")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	pool := flag.Int("pool", runtime.GOMAXPROCS(0), "concurrent solves (worker pool size)")
	cache := flag.Int("cache", 128, "result cache entries (negative disables)")
	maxLimit := flag.Duration("max-time-limit", 0, "cap on per-request time limits (0 = uncapped)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain timeout on shutdown")
	flag.Parse()

	svc := service.New(service.Config{
		QueueSize:    *queue,
		PoolWorkers:  *pool,
		CacheSize:    *cache,
		MaxTimeLimit: *maxLimit,
	})
	expvar.Publish("ftdsed", svc.Vars())

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ftdsed listening on %s (queue %d, pool %d, cache %d)", *addr, *queue, *pool, *cache)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("ftdsed: %v", err)
	case s := <-sig:
		log.Printf("ftdsed: %v — draining (timeout %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ftdsed: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ftdsed: server shutdown: %v\n", err)
	}
	log.Printf("ftdsed: stopped")
}
