// Command ftgen generates synthetic fault-tolerant design problems in
// the JSON format consumed by ftsched, following the paper's evaluation
// setup (random/tree/chain graphs, 10–100 ms WCETs, 1–4 byte messages).
//
// Usage:
//
//	ftgen -procs 40 -nodes 3 -k 4 -mu 5 -shape random -seed 1 -o app.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/ftdse"
)

func main() {
	var (
		procs    = flag.Int("procs", 20, "number of processes")
		nodes    = flag.Int("nodes", 2, "number of computation nodes")
		k        = flag.Int("k", 2, "number of transient faults to tolerate per cycle")
		muMs     = flag.Float64("mu", 5, "fault recovery overhead µ in milliseconds")
		shape    = flag.String("shape", "random", "graph structure: "+strings.Join(ftdse.ShapeNames(), ", "))
		dist     = flag.String("dist", "uniform", "WCET distribution: "+strings.Join(ftdse.WCETDistNames(), ", "))
		seed     = flag.Int64("seed", 1, "random seed")
		deadline = flag.Float64("deadline", 0, "graph deadline in milliseconds (0 = none)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	spec := ftdse.GenSpec{
		Procs:    *procs,
		Nodes:    *nodes,
		Seed:     *seed,
		Deadline: ftdse.Time(*deadline * float64(ftdse.Millisecond)),
	}
	var err error
	if spec.Shape, err = ftdse.ParseShape(*shape); err != nil {
		fatalf("%v", err)
	}
	if spec.WCETDist, err = ftdse.ParseWCETDist(*dist); err != nil {
		fatalf("%v", err)
	}

	prob := ftdse.GenerateProblem(spec,
		ftdse.FaultModel{K: *k, Mu: ftdse.Time(*muMs * float64(ftdse.Millisecond))})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := ftdse.WriteProblem(w, prob); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftgen: "+format+"\n", args...)
	os.Exit(1)
}
