// Command ftgen generates synthetic fault-tolerant design problems in
// the JSON format consumed by ftsched, following the paper's evaluation
// setup (random/tree/chain graphs, 10–100 ms WCETs, 1–4 byte messages).
//
// Usage:
//
//	ftgen -procs 40 -nodes 3 -k 4 -mu 5 -shape random -seed 1 -o app.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sysio"
)

func main() {
	var (
		procs    = flag.Int("procs", 20, "number of processes")
		nodes    = flag.Int("nodes", 2, "number of computation nodes")
		k        = flag.Int("k", 2, "number of transient faults to tolerate per cycle")
		muMs     = flag.Float64("mu", 5, "fault recovery overhead µ in milliseconds")
		shape    = flag.String("shape", "random", "graph structure: random, tree, chains")
		dist     = flag.String("dist", "uniform", "WCET distribution: uniform, exponential")
		seed     = flag.Int64("seed", 1, "random seed")
		deadline = flag.Float64("deadline", 0, "graph deadline in milliseconds (0 = none)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	spec := gen.Spec{
		Procs:    *procs,
		Nodes:    *nodes,
		Seed:     *seed,
		Deadline: model.Time(*deadline * float64(model.Millisecond)),
	}
	switch *shape {
	case "random":
		spec.Shape = gen.Random
	case "tree":
		spec.Shape = gen.Tree
	case "chains":
		spec.Shape = gen.Chains
	default:
		fatalf("unknown shape %q (random, tree, chains)", *shape)
	}
	switch *dist {
	case "uniform":
		spec.WCETDist = gen.Uniform
	case "exponential":
		spec.WCETDist = gen.Exponential
	default:
		fatalf("unknown distribution %q (uniform, exponential)", *dist)
	}

	prob := gen.Problem(spec, fault.Model{K: *k, Mu: model.Time(*muMs * float64(model.Millisecond))})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := sysio.WriteProblem(w, prob); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftgen: "+format+"\n", args...)
	os.Exit(1)
}
