// Command ftsched synthesizes a fault-tolerant implementation of a
// design problem: it decides the mapping and fault-tolerance policy of
// every process (re-execution, replication, or combinations), builds the
// static schedule tables and the bus MEDL, and reports the worst-case
// timing under the fault hypothesis.
//
// Usage:
//
//	ftsched -in app.json [-strategy mxr] [-iters 500] [-time 30s]
//	        [-workers 0] [-stop-schedulable] [-gantt] [-width 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/gantt"
	"repro/internal/sched"
	"repro/internal/sysio"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (required)")
		strategy = flag.String("strategy", "mxr", "optimization strategy: mxr, mx, mr, sfx, nft")
		iters    = flag.Int("iters", 500, "maximum tabu-search iterations")
		timeLim  = flag.Duration("time", 60*time.Second, "optimization time limit")
		stopSch  = flag.Bool("stop-schedulable", false, "stop at the first schedulable design")
		busOpt   = flag.Bool("busopt", false, "run the final bus-access optimization")
		ckpt     = flag.Bool("checkpointing", false, "enable checkpoint moves (extension)")
		workers  = flag.Int("workers", 0, "concurrent move evaluations (0 = all CPUs, 1 = sequential)")
		showG    = flag.Bool("gantt", true, "print an ASCII Gantt chart")
		width    = flag.Int("width", 100, "Gantt chart width")
		export   = flag.String("export", "", "write the schedule tables + MEDL as JSON to this file")
		dotOut   = flag.String("dot", "", "write the synthesized design as Graphviz DOT to this file")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	prob, err := sysio.ReadProblem(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	var strat core.Strategy
	switch *strategy {
	case "mxr":
		strat = core.MXR
	case "mx":
		strat = core.MX
	case "mr":
		strat = core.MR
	case "sfx":
		strat = core.SFX
	case "nft":
		strat = core.NFT
	default:
		fatalf("unknown strategy %q (mxr, mx, mr, sfx, nft)", *strategy)
	}

	opts := core.DefaultOptions(strat)
	opts.MaxIterations = *iters
	opts.TimeLimit = *timeLim
	opts.StopWhenSchedulable = *stopSch
	opts.OptimizeBusAccess = *busOpt
	opts.EnableCheckpointing = *ckpt
	opts.Workers = *workers

	res, err := core.Optimize(prob, opts)
	if err != nil {
		fatalf("%v", err)
	}
	if err := sched.ValidateSchedule(res.Schedule); err != nil {
		fatalf("internal: synthesized schedule failed validation: %v", err)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sysio.WriteSchedule(f, res.Schedule); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := dot.WriteDesign(f, res.Schedule); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}

	fmt.Printf("strategy %v: %v after %d iterations (%v)\n\n",
		res.Strategy, res.Cost, res.Iterations, res.Elapsed.Round(time.Millisecond))
	fmt.Println("fault-tolerance policy assignment:")
	for _, p := range prob.App.Processes() {
		fmt.Printf("  %-18s %v\n", p.Name, res.Assignment[p.ID])
	}
	fmt.Println()
	fmt.Println(gantt.Table(res.Schedule))
	if *showG {
		fmt.Println(gantt.Render(res.Schedule, *width))
	}
	fmt.Println(gantt.Summary(res.Schedule))
	tables := sched.CompileTables(res.Schedule)
	fmt.Printf("schedule-table memory: %d dispatch/MEDL rows\n", tables.TotalRows())
	if !res.Cost.Schedulable() {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftsched: "+format+"\n", args...)
	os.Exit(1)
}
