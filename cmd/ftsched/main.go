// Command ftsched synthesizes a fault-tolerant implementation of a
// design problem: it decides the mapping and fault-tolerance policy of
// every process (re-execution, replication, or combinations), builds the
// static schedule tables and the bus MEDL, and reports the worst-case
// timing under the fault hypothesis.
//
// Usage:
//
//	ftsched -in app.json [-strategy mxr] [-engine default] [-iters 500]
//	        [-time 30s] [-workers 0] [-stop-schedulable] [-progress]
//	        [-gantt] [-width 100] [-trace run.jsonl]
//
// Exit status: 0 when the synthesized design meets all deadlines in the
// worst case, 2 when the best design found is unschedulable, and 1 on
// usage or input errors — so scripts can tell synthesis failure from
// tool failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ftdse"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (required)")
		strategy = flag.String("strategy", "mxr", "optimization strategy: "+strings.Join(ftdse.StrategyNames(), ", "))
		engine   = flag.String("engine", "default", "search engine: "+strings.Join(ftdse.Engines(), ", "))
		seed     = flag.Int64("seed", 0, "seed for stochastic engines (0 = fixed default)")
		iters    = flag.Int("iters", 500, "maximum tabu-search iterations")
		timeLim  = flag.Duration("time", 60*time.Second, "optimization time limit")
		stopSch  = flag.Bool("stop-schedulable", false, "stop at the first schedulable design")
		busOpt   = flag.Bool("busopt", false, "run the final bus-access optimization")
		ckpt     = flag.Bool("checkpointing", false, "enable checkpoint moves (extension)")
		workers  = flag.Int("workers", 0, "concurrent move evaluations (0 = all CPUs, 1 = sequential)")
		progress = flag.Bool("progress", false, "stream incumbent solutions to stderr as they are found")
		showG    = flag.Bool("gantt", true, "print an ASCII Gantt chart")
		width    = flag.Int("width", 100, "Gantt chart width")
		export   = flag.String("export", "", "write the schedule tables + MEDL as JSON to this file")
		dotOut   = flag.String("dot", "", "write the synthesized design as Graphviz DOT to this file")
		traceOut = flag.String("trace", "", "record the search flight recorder and write the trace JSONL to this file (render with fttrace)")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	prob, err := ftdse.ReadProblem(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	strat, err := ftdse.ParseStrategy(*strategy)
	if err != nil {
		fatalf("%v", err)
	}
	eng, err := ftdse.ParseEngine(*engine)
	if err != nil {
		fatalf("%v", err)
	}

	opts := []ftdse.Option{
		ftdse.WithStrategy(strat),
		ftdse.WithEngine(eng),
		ftdse.WithSeed(*seed),
		ftdse.WithMaxIterations(*iters),
		ftdse.WithTimeLimit(*timeLim),
		ftdse.WithStopWhenSchedulable(*stopSch),
		ftdse.WithBusOptimization(*busOpt),
		ftdse.WithCheckpointing(*ckpt),
		ftdse.WithWorkers(*workers),
	}
	if *traceOut != "" {
		opts = append(opts, ftdse.WithFlightRecorder(ftdse.DefaultFlightRecorderEvents))
	}
	if *progress {
		opts = append(opts, ftdse.WithProgress(func(imp ftdse.Improvement) {
			fmt.Fprintf(os.Stderr, "ftsched: %-7s iter %-5d %v (%v)\n",
				imp.Phase, imp.Iteration, imp.Cost, imp.Elapsed.Round(time.Millisecond))
		}))
	}

	// Ctrl-C interrupts the search and keeps the best design so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := ftdse.NewSolver(opts...).Solve(ctx, prob)
	// Restore default SIGINT handling for the reporting phase.
	stop()
	if err != nil {
		fatalf("%v", err)
	}
	if err := ftdse.ValidateSchedule(res.Schedule); err != nil {
		fatalf("internal: synthesized schedule failed validation: %v", err)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatalf("%v", err)
		}
		if err := ftdse.WriteSchedule(f, res.Schedule); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := ftdse.WriteTrace(f, res.Trace); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := ftdse.WriteDesignDOT(f, res.Schedule); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}

	fmt.Printf("strategy %v, engine %s: %v after %d iterations (%v, %v)\n\n",
		res.Strategy, res.Engine, res.Cost, res.Iterations, res.Elapsed.Round(time.Millisecond), res.Stopped)
	fmt.Println("fault-tolerance policy assignment:")
	for _, p := range prob.Processes() {
		fmt.Printf("  %-18s %v\n", p.Name, res.Design[p.ID])
	}
	fmt.Println()
	fmt.Println(ftdse.GanttTable(res.Schedule))
	if *showG {
		fmt.Println(ftdse.GanttChart(res.Schedule, *width))
	}
	fmt.Println(ftdse.GanttSummary(res.Schedule))
	tables := ftdse.CompileTables(res.Schedule)
	fmt.Printf("schedule-table memory: %d dispatch/MEDL rows\n", tables.TotalRows())
	if !res.Schedulable() {
		// Distinct exit status: the tool worked but the best design
		// found misses deadlines.
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftsched: "+format+"\n", args...)
	os.Exit(1)
}
