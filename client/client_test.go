package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

// newService spins up a service behind an httptest server and returns a
// client bound to it; both are torn down with the test.
func newService(t *testing.T, cfg service.Config) *client.Client {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return client.New(srv.URL, srv.Client())
}

func genProblem(procs int, seed int64) ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: procs, Nodes: 2, Seed: seed},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
}

// waitState polls Job until ok matches.
func waitState(t *testing.T, c *client.Client, id string, timeout time.Duration, ok func(service.JobStatus) bool) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientEndToEnd walks the typed client through the whole service
// path: health, submit, stream, result decoding, status fetch, and the
// cache-hit resubmission.
func TestClientEndToEnd(t *testing.T) {
	c := newService(t, service.Config{PoolWorkers: 2, QueueSize: 8})
	ctx := context.Background()
	if !c.Healthy(ctx) {
		t.Fatal("service not healthy")
	}

	prob := genProblem(10, 1)
	opts := service.SolveOptions{MaxIterations: 20, Workers: 1}
	st, err := c.Submit(ctx, prob, opts)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	var events int
	final, err := c.Stream(ctx, st.ID, func(service.ProgressEvent) { events++ })
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if events == 0 || final.Improvements != events {
		t.Errorf("stream delivered %d events, status counts %d", events, final.Improvements)
	}
	res, err := client.Result(final)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Stopped != "completed" {
		t.Errorf("Stopped = %q, want completed", res.Stopped)
	}

	got, err := c.Job(ctx, st.ID)
	if err != nil || got.ID != st.ID || got.State != service.StateDone {
		t.Errorf("Job = %+v, %v", got, err)
	}

	again, err := c.SubmitWait(ctx, prob, opts)
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if !again.Cached {
		t.Error("resubmission missed the cache")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m["ftdse_solves_total"] != 1 {
		t.Errorf("ftdse_solves_total = %v, want 1", m["ftdse_solves_total"])
	}

	if _, err := c.Job(ctx, "no-such-job"); err == nil {
		t.Error("Job on an unknown id succeeded")
	} else {
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != 404 {
			t.Errorf("unknown job error = %v, want *StatusError 404", err)
		}
	}
}

// TestClientQueueFullAndCancel pins the typed backpressure error and
// the cancel path.
func TestClientQueueFullAndCancel(t *testing.T) {
	c := newService(t, service.Config{PoolWorkers: 1, QueueSize: 1})
	ctx := context.Background()
	slow := service.SolveOptions{MaxIterations: 1_000_000, Workers: 1}

	a, err := c.Submit(ctx, genProblem(24, 2), slow)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, c, a.ID, 30*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning && st.Improvements >= 1
	})
	b, err := c.Submit(ctx, genProblem(24, 3), slow)
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}

	_, err = c.Submit(ctx, genProblem(24, 4), slow)
	var qf *client.QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("third Submit error = %v, want *QueueFullError", err)
	}
	if qf.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", qf.RetryAfter)
	}

	// SubmitBatch is all-or-nothing against the same full queue.
	req, err := client.NewRequest(genProblem(24, 5), slow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBatch(ctx, []service.SubmitRequest{req}); !errors.As(err, &qf) {
		t.Errorf("SubmitBatch on a full queue = %v, want *QueueFullError", err)
	}

	// Cancel blocks until the job is terminal, so its own return value
	// already carries the final state and the best-so-far result.
	final, err := c.Cancel(ctx, a.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if final.State != service.StateCanceled || len(final.Result) == 0 {
		t.Errorf("canceled job: state %q, %d result bytes; want canceled with best-so-far",
			final.State, len(final.Result))
	}
	if _, err := c.Cancel(ctx, b.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
}
