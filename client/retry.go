package client

import (
	"context"
	"errors"
	"math/rand"
	"net/url"
	"strings"
	"time"
)

// retryPolicy bounds the automatic retries of WithRetry.
type retryPolicy struct {
	attempts int
	maxWait  time.Duration
}

// defaultMaxWait caps one retry sleep when WithRetry is given no cap.
const defaultMaxWait = 30 * time.Second

// WithRetry makes the client retry failed exchanges automatically:
// submissions rejected by backpressure (HTTP 429) wait out the server's
// Retry-After hint — jittered upward by as much as half, so a thundering
// herd of equally rejected clients spreads out — and transport errors
// (connection refused, reset) back off exponentially from 100ms,
// rotating to a WithFallback base when one is configured. Everything
// else (4xx validation errors, 5xx answers) still surfaces immediately:
// retrying cannot fix a bad request.
//
// attempts is the total number of tries (values < 2 leave the client
// effectively retry-free); maxWait caps a single sleep, <= 0 selecting
// 30s. The request context bounds the whole exchange including the
// sleeps, so a caller deadline still cuts the retry loop short.
func WithRetry(attempts int, maxWait time.Duration) Option {
	return func(c *Client) {
		if maxWait <= 0 {
			maxWait = defaultMaxWait
		}
		c.retry = retryPolicy{attempts: attempts, maxWait: maxWait}
	}
}

// WithFallback adds spare base URLs: when the current base fails at the
// transport level (unreachable, connection reset), the client rotates
// to the next one — for every subsequent call, not just the failing one,
// so a dead node is abandoned until the rotation comes back around.
// Typical uses: the ftdsed nodes behind a coordinator, or a replica set
// of coordinators.
func WithFallback(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			c.bases = append(c.bases, strings.TrimRight(u, "/"))
		}
	}
}

// jitterSource is a lazily seeded private rand (the process-global one
// is off-limits so tests elsewhere can seed deterministically).
type jitterSource struct {
	r *rand.Rand
}

// float64 returns a uniform [0,1) sample; callers hold c.mu.
func (j *jitterSource) float64() float64 {
	if j.r == nil {
		j.r = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return j.r.Float64()
}

// jitter scales a base wait by [1, 1.5): never shorter than asked (the
// server's Retry-After is a minimum), at most half again longer.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 1 + c.rng.float64()/2
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// classify decides whether a failed attempt is retryable and how long
// to wait before the next one. attempt is 0-based.
func (c *Client) classify(err error, attempt int) (time.Duration, bool) {
	if c.retry.attempts < 2 {
		return 0, false
	}
	var qf *QueueFullError
	switch {
	case errors.As(err, &qf):
		return min(c.jitter(qf.RetryAfter), c.retry.maxWait), true
	case transportError(err):
		backoff := 100 * time.Millisecond << attempt
		return min(c.jitter(backoff), c.retry.maxWait), true
	}
	return 0, false
}

// transportError reports whether err happened below HTTP: the request
// never produced a response, so nothing server-side decided anything
// and another base (or a later retry) may well succeed.
func transportError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// sleepCtx sleeps d or until ctx fires.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
