package client_test

import (
	"context"
	"testing"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

// TestClientEngineAndStopCause drives an engine-selecting, time-limited
// submission through the typed client: the result names the engine and
// the typed stop cause distinguishes truncation from convergence.
func TestClientEngineAndStopCause(t *testing.T) {
	c := newService(t, service.Config{QueueSize: 8, PoolWorkers: 2})
	prob := genProblem(8, 42)

	// A converged portfolio solve.
	st, err := c.SubmitWait(context.Background(), prob, service.SolveOptions{
		Engine:        "portfolio",
		MaxIterations: 10,
	})
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	res, err := client.Result(st)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Engine != "portfolio" {
		t.Errorf("result engine %q, want portfolio", res.Engine)
	}
	cause, err := res.StopCause()
	if err != nil || cause != ftdse.StopCompleted {
		t.Errorf("stop cause %v (%v), want completed", cause, err)
	}

	// A deadline-truncated solve reports StopTimeLimit.
	st, err = c.SubmitWait(context.Background(), genProblem(20, 7), service.SolveOptions{
		MaxIterations: 1_000_000,
		TimeLimitMs:   50,
		Workers:       1,
	})
	if err != nil {
		t.Fatalf("SubmitWait (timed): %v", err)
	}
	res, err = client.Result(st)
	if err != nil {
		t.Fatalf("Result (timed): %v", err)
	}
	cause, err = res.StopCause()
	if err != nil {
		t.Fatalf("StopCause: %v", err)
	}
	if cause != ftdse.StopTimeLimit {
		t.Errorf("stop cause %v, want time limit", cause)
	}
}
