// Package client is the typed Go client of the ftdsed solve service.
// It shares the wire types of the service package, so a Go consumer
// submits ftdse.Problem values and receives service.JobStatus /
// service.JobResult documents without hand-rolled JSON.
//
// The client maps the service's backpressure onto a typed error:
// submissions rejected by a full queue return a *QueueFullError
// carrying the server's Retry-After hint. By default the error is
// surfaced immediately; WithRetry turns it into bounded, jittered
// waiting, and WithFallback adds spare base URLs (a coordinator's
// nodes, or replicas) tried when the current one is unreachable.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
	"repro/ftdse/service"
)

// Client talks to one ftdsed (or ftclusterd) instance, with optional
// retry and base-URL failover. All methods are safe for concurrent use.
type Client struct {
	http  *http.Client
	retry retryPolicy

	mu    sync.Mutex
	bases []string // rotation order; bases[cur] is the current target
	cur   int
	rng   jitterSource
}

// Option configures a Client (see WithRetry, WithFallback).
type Option func(*Client)

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8385"). A nil httpClient uses http.DefaultClient.
func New(baseURL string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{bases: []string{strings.TrimRight(baseURL, "/")}, http: httpClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// base returns the current base URL.
func (c *Client) baseURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.cur]
}

// failover rotates to the next base URL after from failed, unless a
// concurrent caller already rotated away from it.
func (c *Client) failover(from string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bases[c.cur] == from && len(c.bases) > 1 {
		c.cur = (c.cur + 1) % len(c.bases)
	}
}

// QueueFullError reports a submission rejected by the service's
// backpressure (HTTP 429).
type QueueFullError struct {
	// RetryAfter is the server's estimate of when queue space frees up.
	RetryAfter time.Duration
	// Fingerprint identifies the rejected submission (when the server
	// reported it), so operators can correlate the rejection with later
	// resubmissions of the same problem.
	Fingerprint string
	// QueueDepth is the server's queue backlog at rejection time.
	QueueDepth int
}

func (e *QueueFullError) Error() string {
	msg := fmt.Sprintf("ftdsed queue full (retry after %v)", e.RetryAfter)
	if e.Fingerprint != "" {
		msg += fmt.Sprintf("; rejected fingerprint %s at queue depth %d", e.Fingerprint, e.QueueDepth)
	}
	return msg
}

// StatusError reports any other non-2xx answer.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("ftdsed: HTTP %d: %s", e.Code, e.Message)
}

// apiError converts a non-2xx response to a typed error.
func apiError(resp *http.Response) error {
	var body service.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Duration(body.RetryAfterS) * time.Second
		if after <= 0 {
			after = time.Second
		}
		return &QueueFullError{
			RetryAfter:  after,
			Fingerprint: body.Fingerprint,
			QueueDepth:  body.QueueDepth,
		}
	}
	return &StatusError{Code: resp.StatusCode, Message: msg}
}

// do runs one JSON request/response exchange, retrying per the
// configured policy. Retrying any of the service's endpoints is safe:
// reads are idempotent, and re-POSTing a submission coalesces onto the
// in-flight job (or hits the cache) by fingerprint.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := max(c.retry.attempts, 1)
	var last error
	for a := 0; a < attempts; a++ {
		base := c.baseURL()
		err := c.once(ctx, method, base+path, raw, out)
		if err == nil {
			return nil
		}
		last = err
		wait, retryable := c.classify(err, a)
		if !retryable || ctx.Err() != nil {
			return err
		}
		if transportError(err) {
			// The target may be down for good: rotate to a fallback so
			// the next attempt (and subsequent calls) try elsewhere.
			c.failover(base)
		}
		if a == attempts-1 {
			break // out of attempts: skip the useless final sleep
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return last
		}
	}
	return last
}

// once runs a single JSON exchange against an absolute URL.
func (c *Client) once(ctx context.Context, method, url string, raw []byte, out any) error {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// request encodes a problem into a SubmitRequest, minting a trace ID so
// the submission is traceable end to end — through the coordinator's
// journal, the solving node's logs, the SSE stream, and the final
// result — from the moment it leaves this process.
func request(p ftdse.Problem, opts service.SolveOptions) (service.SubmitRequest, error) {
	var doc bytes.Buffer
	if err := ftdse.WriteProblem(&doc, p); err != nil {
		return service.SubmitRequest{}, err
	}
	return service.SubmitRequest{Problem: doc.Bytes(), Options: opts, TraceID: obs.NewTraceID()}, nil
}

// Submit enqueues one problem and returns immediately with the job's
// status — StateQueued, or StateDone when the result cache answered.
func (c *Client) Submit(ctx context.Context, p ftdse.Problem, opts service.SolveOptions) (service.JobStatus, error) {
	return c.submit(ctx, p, opts, "/solve")
}

// SubmitWait submits one problem and blocks until the job is terminal.
// Canceling ctx cancels the job on the server (cancel-on-disconnect);
// the call then reports the context error.
func (c *Client) SubmitWait(ctx context.Context, p ftdse.Problem, opts service.SolveOptions) (service.JobStatus, error) {
	return c.submit(ctx, p, opts, "/solve?wait=1")
}

func (c *Client) submit(ctx context.Context, p ftdse.Problem, opts service.SolveOptions, path string) (service.JobStatus, error) {
	req, err := request(p, opts)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	if err := c.do(ctx, http.MethodPost, path, req, &st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

// SubmitBatch submits several problems atomically: either every job is
// admitted (or served from cache) or the whole batch fails, typically
// with *QueueFullError.
func (c *Client) SubmitBatch(ctx context.Context, reqs []service.SubmitRequest) ([]service.JobStatus, error) {
	var resp service.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/solve/batch", service.BatchRequest{Jobs: reqs}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// NewRequest packages a problem and options for SubmitBatch.
func NewRequest(p ftdse.Problem, opts service.SolveOptions) (service.SubmitRequest, error) {
	return request(p, opts)
}

// Job fetches a job's status; the result document is embedded once the
// job is terminal.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a job. A running solve stops within one scheduling
// pass and keeps its best-so-far design in the returned status.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// Result decodes a terminal status's embedded result document.
func Result(st service.JobStatus) (service.JobResult, error) {
	var res service.JobResult
	if len(st.Result) == 0 {
		return res, fmt.Errorf("job %s (%s) carries no result", st.ID, st.State)
	}
	err := json.Unmarshal(st.Result, &res)
	return res, err
}

// Stream subscribes to a job's SSE event stream, invoking onEvent for
// every incumbent solution as the search finds it (onEvent may be nil),
// and returns the final status delivered by the closing "done" event.
// The stream replays the full improvement history first, so late
// subscribers see every event.
func (c *Client) Stream(ctx context.Context, id string, onEvent func(service.ProgressEvent)) (service.JobStatus, error) {
	base := c.baseURL()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Rotate like do does so the caller's re-subscription (and every
		// other call on this client) targets a live base.
		if transportError(err) {
			c.failover(base)
		}
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, apiError(resp)
	}

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "":
			if data.Len() == 0 {
				continue
			}
			switch event {
			case "improvement":
				var ev service.ProgressEvent
				if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
					return service.JobStatus{}, fmt.Errorf("decoding improvement event: %w", err)
				}
				if onEvent != nil {
					onEvent(ev)
				}
			case "done":
				var st service.JobStatus
				if err := json.Unmarshal(data.Bytes(), &st); err != nil {
					return service.JobStatus{}, fmt.Errorf("decoding done event: %w", err)
				}
				return st, nil
			}
			event, data = "", bytes.Buffer{}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return service.JobStatus{}, ctx.Err()
		}
		return service.JobStatus{}, err
	}
	return service.JobStatus{}, errors.New("event stream ended without a done event")
}

// Metrics scrapes the service's Prometheus text exposition into flat
// name → value pairs. Labeled samples key as name{label="value"}, and
// histograms contribute their _bucket/_sum/_count series.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL()+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return obs.ParseText(io.LimitReader(resp.Body, 16<<20))
}

// Healthy reports whether the service answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err == nil
}
