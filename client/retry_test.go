package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

// stub answers every /solve with the scripted codes, then 200.
func stubServer(t *testing.T, codes ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(codes) {
			code := codes[n-1]
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(service.ErrorResponse{Error: "scripted", RetryAfterS: 1})
			return
		}
		json.NewEncoder(w).Encode(service.JobStatus{ID: "j1", State: service.StateDone})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func testProblem() ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: 6, Nodes: 2, Seed: 1},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
}

func TestWithRetryWaitsOutQueueFull(t *testing.T) {
	srv, calls := stubServer(t, http.StatusTooManyRequests, http.StatusTooManyRequests)
	c := client.New(srv.URL, nil, client.WithRetry(3, 2*time.Second))
	start := time.Now()
	st, err := c.Submit(context.Background(), testProblem(), service.SolveOptions{})
	if err != nil {
		t.Fatalf("Submit with retry: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("status = %+v", st)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
	// Two 429s, each honoring the 1s Retry-After (jittered upward).
	if e := time.Since(start); e < 2*time.Second {
		t.Fatalf("retries ignored Retry-After: done in %v", e)
	}
}

func TestWithRetryIsBounded(t *testing.T) {
	srv, calls := stubServer(t,
		http.StatusTooManyRequests, http.StatusTooManyRequests, http.StatusTooManyRequests)
	c := client.New(srv.URL, nil, client.WithRetry(2, 50*time.Millisecond))
	_, err := c.Submit(context.Background(), testProblem(), service.SolveOptions{})
	var qf *client.QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("exhausted retries = %v, want QueueFullError", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want exactly the 2 configured attempts", n)
	}
}

func TestWithRetryDoesNotTouchClientErrors(t *testing.T) {
	srv, calls := stubServer(t, http.StatusBadRequest)
	c := client.New(srv.URL, nil, client.WithRetry(5, time.Second))
	_, err := c.Submit(context.Background(), testProblem(), service.SolveOptions{})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("a 400 was retried (%d calls)", n)
	}
}

func TestWithRetryHonorsContext(t *testing.T) {
	srv, _ := stubServer(t, http.StatusTooManyRequests, http.StatusTooManyRequests)
	c := client.New(srv.URL, nil, client.WithRetry(3, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, testProblem(), service.SolveOptions{})
	if err == nil {
		t.Fatal("submit succeeded despite scripted 429s and a 100ms deadline")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("context deadline did not cut the retry sleep short (%v)", e)
	}
}

func TestWithFallbackRoutesAroundDeadBase(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{ID: "j-live", State: service.StateDone})
	}))
	defer live.Close()
	// A base that is down for good: reserve a port, then close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := client.New(deadURL, nil,
		client.WithFallback(live.URL),
		client.WithRetry(3, time.Second))
	st, err := c.Submit(context.Background(), testProblem(), service.SolveOptions{})
	if err != nil {
		t.Fatalf("Submit with fallback: %v", err)
	}
	if st.ID != "j-live" {
		t.Fatalf("status = %+v", st)
	}

	// The rotation is sticky: the next call goes straight to the live
	// base (one server call, no retry needed).
	if _, err := c.Job(context.Background(), "j-live"); err != nil {
		t.Fatalf("follow-up call after failover: %v", err)
	}
}
